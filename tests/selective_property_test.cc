/**
 * @file
 * Property-based tests of Algorithm 1 (selective weight extraction):
 * decode correctness under controlled fine-tuning deltas, cost
 * monotonicity in the policy knobs, storage-format invariances, the
 * full-read fallback boundary, and graceful degradation under a noisy
 * (bit-flipping) rowhammer channel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "extraction/bitprobe.hh"
#include "extraction/ieee.hh"
#include "extraction/selective.hh"
#include "util/rng.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"

namespace de = decepticon::extraction;
namespace dz = decepticon::zoo;
namespace du = decepticon::util;

namespace {

/** Single-weight store + oracle wrapper. */
struct OneWeight
{
    dz::WeightStore store;
    std::unique_ptr<de::WeightStoreOracle> oracle;
    std::unique_ptr<de::BitProbeChannel> channel;

    explicit OneWeight(float actual)
    {
        store.layers.push_back({"l0", {actual}});
        oracle = std::make_unique<de::WeightStoreOracle>(store);
        channel = std::make_unique<de::BitProbeChannel>(*oracle);
    }
};

} // namespace

/**
 * Decode correctness: for any base weight and any delta smaller than
 * half the decode modulus, the extracted value lands within the
 * window resolution of the truth.
 */
class DecodeCorrectness : public ::testing::TestWithParam<int>
{
};

TEST_P(DecodeCorrectness, RecoversWithinResolution)
{
    du::Rng rng(static_cast<std::uint64_t>(GetParam()));
    de::ExtractionPolicy policy;
    policy.baseDist = 0.004;
    policy.uShapeAlpha = 0.0;
    policy.significance = 1e-5;
    policy.maxBitsPerWeight = 6;
    de::SelectiveWeightExtractor ex(policy);

    for (int trial = 0; trial < 200; ++trial) {
        // Bases well away from zero so no fallback triggers.
        const float base = static_cast<float>(
            (rng.bernoulli(0.5) ? 1.0 : -1.0) * rng.uniform(0.05, 0.9));
        // Deltas within the decode contract: the residue modulus is at
        // least the estimated distance, so |delta| < est/2 always
        // decodes unambiguously.
        const float delta =
            static_cast<float>(rng.gaussian(0.0, policy.baseDist / 8.0));
        if (std::fabs(delta) >= 0.45 * policy.baseDist)
            continue;
        const float actual = base + delta;
        if (de::unbiasedExponent(actual) != de::unbiasedExponent(base))
            continue; // binade crossing is out of contract

        OneWeight w(actual);
        de::ExtractionStats stats;
        const float clone =
            ex.extractWeight(base, *w.channel, 0, 0, stats);
        ASSERT_EQ(stats.weightsChecked, 1u);
        // Window spans ~baseDist down to baseDist / 2^5; unread bits
        // below it bound the residual.
        EXPECT_LT(std::fabs(clone - actual), policy.baseDist / 8.0)
            << "base=" << base << " actual=" << actual;
        // Extraction must never be worse than keeping the baseline.
        EXPECT_LE(std::fabs(clone - actual),
                  std::fabs(base - actual) + policy.baseDist / 16.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeCorrectness, ::testing::Range(1, 9));

/** Cost monotonicity: more bits per weight never reads fewer bits. */
TEST(SelectiveProperty, BitCostMonotoneInMaxBits)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 1;
    arch.hidden = 256;
    const auto pre = dz::WeightStore::makePretrained(arch, 3, 4000);
    dz::FineTuneOptions fopts;
    const auto victim = dz::FineTuneSimulator::fineTune(pre, fopts, 4);

    std::size_t prev = 0;
    for (int bits = 1; bits <= 8; ++bits) {
        de::WeightStoreOracle oracle(victim);
        de::BitProbeChannel channel(oracle);
        de::ExtractionPolicy policy;
        policy.maxBitsPerWeight = bits;
        de::SelectiveWeightExtractor ex(policy);
        de::ExtractionStats stats;
        ex.extractLayer(pre.layers[0].w, channel, 0, stats);
        EXPECT_GE(channel.stats().bitsRead, prev);
        prev = channel.stats().bitsRead;
    }
}

/** Tighter significance thresholds check at least as many weights. */
TEST(SelectiveProperty, CheckedCountMonotoneInSignificance)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 1;
    arch.hidden = 256;
    const auto pre = dz::WeightStore::makePretrained(arch, 5, 4000);
    dz::FineTuneOptions fopts;
    const auto victim = dz::FineTuneSimulator::fineTune(pre, fopts, 6);

    std::size_t prev_checked = arch.hidden * 100000;
    for (double sig : {0.0005, 0.001, 0.002, 0.004, 0.008}) {
        de::WeightStoreOracle oracle(victim);
        de::BitProbeChannel channel(oracle);
        de::ExtractionPolicy policy;
        policy.significance = sig;
        de::SelectiveWeightExtractor ex(policy);
        de::ExtractionStats stats;
        ex.extractLayer(pre.layers[0].w, channel, 0, stats);
        EXPECT_LE(stats.weightsChecked, prev_checked);
        prev_checked = stats.weightsChecked;
    }
}

/** Fallback boundary: estimates comparable to the weight trigger a
 *  full read, which is then exact. */
TEST(SelectiveProperty, FallbackFullReadIsExact)
{
    de::ExtractionPolicy policy;
    policy.baseDist = 0.01;
    policy.uShapeAlpha = 0.0;
    policy.significance = 1e-5;
    de::SelectiveWeightExtractor ex(policy);

    // |base| = 0.012 < 2 * est -> fallback; victim crossed a binade.
    const float base = 0.012f;
    const float actual = -0.0049f; // sign flip, different exponent
    OneWeight w(actual);
    de::ExtractionStats stats;
    const float clone = ex.extractWeight(base, *w.channel, 0, 0, stats);
    EXPECT_EQ(clone, actual);
    EXPECT_EQ(stats.fullWeightsRead, 1u);
    EXPECT_EQ(w.channel->stats().bitsRead, 32u);
}

TEST(SelectiveProperty, NoFallbackForLargeWeights)
{
    de::ExtractionPolicy policy;
    policy.baseDist = 0.01;
    policy.uShapeAlpha = 0.0;
    policy.significance = 1e-5;
    policy.maxBitsPerWeight = 2;
    de::SelectiveWeightExtractor ex(policy);

    OneWeight w(0.505f);
    de::ExtractionStats stats;
    ex.extractWeight(0.5f, *w.channel, 0, 0, stats);
    EXPECT_EQ(stats.fullWeightsRead, 0u);
    EXPECT_LE(w.channel->stats().bitsRead, 2u);
}

/** Storage formats: bfloat16 checks the same leading fraction bits as
 *  float32 (same exponent width — the paper's Sec. 8 point). */
TEST(SelectiveProperty, Bfloat16ChecksSameWindowAsFloat32)
{
    const float base = 0.018f;
    const float actual = 0.01908f;

    auto run = [&](const de::FloatFormat &fmt, float victim_value) {
        OneWeight w(victim_value);
        de::ExtractionPolicy policy;
        policy.baseDist = 0.002;
        policy.uShapeAlpha = 0.0;
        policy.significance = 0.0002;
        policy.storageFormat = fmt;
        de::SelectiveWeightExtractor ex(policy);
        de::ExtractionStats stats;
        const float clone =
            ex.extractWeight(base, *w.channel, 0, 0, stats);
        return std::make_pair(clone, stats.bitsChecked);
    };

    const auto [clone32, bits32] = run(de::kFloat32, actual);
    const auto [clone16, bits16] = run(
        de::kBfloat16, de::quantizeTo(actual, de::kBfloat16));
    EXPECT_EQ(bits32, bits16); // same window positions
    EXPECT_NEAR(clone32, clone16, 0.0002);
}

/** float16 victims: the window clamp prevents probing absent bits. */
TEST(SelectiveProperty, Float16WindowClamped)
{
    OneWeight w(de::quantizeTo(0.505f, de::kFloat16));
    de::ExtractionPolicy policy;
    policy.baseDist = 1e-6; // would target fraction bits beyond 10
    policy.uShapeAlpha = 0.0;
    policy.significance = 1e-9;
    policy.maxBitsPerWeight = 8;
    policy.storageFormat = de::kFloat16;
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;
    ex.extractWeight(0.5f, *w.channel, 0, 0, stats);
    // No bit beyond fraction position 10 may be probed; with the
    // window entirely below the clamp nothing is read at all.
    EXPECT_EQ(stats.bitsChecked, 0u);
}

/** Quantized store round trip: quantizeStore touches every weight. */
TEST(SelectiveProperty, QuantizeStoreAppliesFormat)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 2;
    arch.hidden = 64;
    auto store = dz::WeightStore::makePretrained(arch, 7, 200);
    store.head.w = {0.12345678f, -0.987654f};
    const auto q = de::quantizeStore(store, de::kBfloat16);
    for (std::size_t l = 0; l < q.layers.size(); ++l) {
        for (std::size_t i = 0; i < q.layers[l].w.size(); ++i) {
            EXPECT_EQ(q.layers[l].w[i],
                      de::quantizeTo(store.layers[l].w[i],
                                     de::kBfloat16));
        }
    }
    EXPECT_EQ(q.head.w.size(), 2u);
    EXPECT_EQ(q.head.w[0],
              de::quantizeTo(store.head.w[0], de::kBfloat16));
}

/** Bit-error injection: extraction error rises smoothly with the
 *  channel's bit error rate, not catastrophically. */
class NoisyChannelSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(NoisyChannelSweep, ErrorRateDegradesGracefully)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 1;
    arch.hidden = 256;
    const auto pre = dz::WeightStore::makePretrained(
        arch, 10 + GetParam(), 4000);
    dz::FineTuneOptions fopts;
    const auto victim = dz::FineTuneSimulator::fineTune(
        pre, fopts, 20 + GetParam());

    auto correct_at = [&](double ber) {
        de::WeightStoreOracle oracle(victim);
        de::BitProbeChannel channel(oracle, 1, ber,
                                    static_cast<std::uint64_t>(
                                        GetParam()));
        de::ExtractionPolicy policy;
        de::SelectiveWeightExtractor ex(policy);
        de::ExtractionStats stats;
        const auto clone =
            ex.extractLayer(pre.layers[0].w, channel, 0, stats);
        ex.auditAccuracy(clone, victim.layers[0].w, pre.layers[0].w,
                         stats);
        return stats.correctFraction();
    };

    const double clean = correct_at(0.0);
    const double mild = correct_at(0.02);
    const double heavy = correct_at(0.2);
    EXPECT_GT(clean, 0.85);
    EXPECT_GE(clean + 1e-9, mild - 0.05);
    // Even a very unreliable channel only corrupts checked weights;
    // the skipped majority is untouched.
    EXPECT_GT(heavy, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoisyChannelSweep, ::testing::Range(1, 5));

/** Hammer-rounds accounting scales linearly with roundsPerBit. */
TEST(SelectiveProperty, HammerRoundsScale)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 1;
    arch.hidden = 64;
    const auto pre = dz::WeightStore::makePretrained(arch, 30, 500);
    dz::FineTuneOptions fopts;
    const auto victim = dz::FineTuneSimulator::fineTune(pre, fopts, 31);

    de::ExtractionPolicy policy;
    de::SelectiveWeightExtractor ex(policy);

    de::WeightStoreOracle oracle(victim);
    de::BitProbeChannel c1(oracle, 1);
    de::BitProbeChannel c5(oracle, 5);
    de::ExtractionStats s1, s5;
    ex.extractLayer(pre.layers[0].w, c1, 0, s1);
    ex.extractLayer(pre.layers[0].w, c5, 0, s5);
    EXPECT_EQ(c1.stats().bitsRead, c5.stats().bitsRead);
    EXPECT_EQ(c5.stats().hammerRounds, 5 * c1.stats().hammerRounds);
}
