/**
 * @file
 * Campaign-level test harness: fingerprint-cache semantics (hit /
 * miss / eviction / stale-invalidation), batched level-1 equivalence
 * with the serial path, campaign determinism across lane counts,
 * fault-storm degradation, and rollup correctness against per-victim
 * ground truth.
 */

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/cache.hh"
#include "campaign/campaign.hh"
#include "core/campaign_report.hh"
#include "core/two_level.hh"
#include "gpusim/trace_generator.hh"
#include "obs/clock.hh"
#include "obs/obs.hh"
#include "sched/sched.hh"
#include "transformer/classifier.hh"
#include "zoo/session.hh"
#include "zoo/zoo.hh"

namespace dc = decepticon::core;
namespace dcp = decepticon::campaign;
namespace dg = decepticon::gpusim;
namespace dz = decepticon::zoo;
namespace dtr = decepticon::transformer;
namespace sched = decepticon::sched;
namespace obs = decepticon::obs;

namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

/** Restore the environment-configured global pool on scope exit. */
struct PoolGuard
{
    ~PoolGuard() { sched::setThreads(0); }
};

dtr::TransformerConfig
tinyConfig()
{
    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 8;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 16;
    cfg.numClasses = 2;
    return cfg;
}

std::shared_ptr<dtr::TransformerClassifier>
tinyModel(std::uint64_t seed)
{
    return std::make_shared<dtr::TransformerClassifier>(tinyConfig(),
                                                        seed);
}

/** A prepared attack over a 4-lineage pool, built once (the CNN
 *  training dominates test wall time) and shared read-only. */
struct Harness
{
    dz::ModelZoo zoo;
    std::unique_ptr<dc::TwoLevelAttack> attack;
};

Harness &
harness()
{
    static Harness h = [] {
        sched::setThreads(1); // train at a fixed lane count
        Harness x;
        x.zoo = dz::ModelZoo::buildDefault(51, 4, 0);
        dc::TwoLevelOptions opts;
        opts.level1.datasetOptions.imagesPerModel = 3;
        opts.level1.datasetOptions.resolution = 32;
        opts.level1.cnnOptions.epochs = 15;
        opts.level1.seed = 2;
        x.attack = std::make_unique<dc::TwoLevelAttack>(opts);
        for (const auto *candidate : x.zoo.pretrained())
            x.attack->addCandidate(*candidate,
                                   tinyModel(candidate->weightSeed));
        x.attack->prepare();
        sched::setThreads(0);
        return x;
    }();
    return h;
}

dcp::CampaignOptions
campaignOptions()
{
    dcp::CampaignOptions opts;
    opts.batchSize = 8;
    opts.querySetSize = 12;
    opts.victimConfig = tinyConfig();
    opts.seed = 7;
    return opts;
}

dz::SessionSamplerOptions
samplerOptions(std::size_t sessions)
{
    dz::SessionSamplerOptions sopts;
    sopts.sessions = sessions;
    sopts.capturesPerVictim = 2;
    sopts.skewPopularity = 0.7;
    return sopts;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Cache semantics.
// ---------------------------------------------------------------------

TEST(FingerprintCache, MissThenHitRoundTrip)
{
    dcp::FingerprintCache cache;
    const auto miss = cache.lookup("sig-a", 0);
    EXPECT_EQ(miss.outcome, dcp::CacheOutcome::Miss);
    EXPECT_EQ(cache.stats().misses, 1u);

    cache.storeIdentity("sig-a", "lineage-1", 0);
    const auto hit = cache.lookup("sig-a", 1);
    EXPECT_EQ(hit.outcome, dcp::CacheOutcome::Hit);
    EXPECT_EQ(hit.identity, "lineage-1");
    EXPECT_EQ(hit.clone, nullptr);
    EXPECT_FALSE(hit.cloneFresh);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(FingerprintCache, LruEvictionAtCapacity)
{
    dcp::CacheOptions opts;
    opts.capacity = 2;
    dcp::FingerprintCache cache(opts);
    cache.storeIdentity("sig-a", "l1", 0);
    cache.storeIdentity("sig-b", "l2", 1);
    // Touch sig-a so sig-b becomes the LRU entry.
    EXPECT_EQ(cache.lookup("sig-a", 2).outcome, dcp::CacheOutcome::Hit);
    cache.storeIdentity("sig-c", "l3", 3);

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.lookup("sig-b", 4).outcome, dcp::CacheOutcome::Miss);
    EXPECT_EQ(cache.lookup("sig-a", 4).outcome, dcp::CacheOutcome::Hit);
    EXPECT_EQ(cache.lookup("sig-c", 4).outcome, dcp::CacheOutcome::Hit);
}

TEST(FingerprintCache, StaleIdentityForcesRevalidation)
{
    dcp::CacheOptions opts;
    opts.identityTtl = 10;
    dcp::FingerprintCache cache(opts);
    cache.storeIdentity("sig-a", "l1", 0);

    EXPECT_EQ(cache.lookup("sig-a", 10).outcome, dcp::CacheOutcome::Hit);
    const auto stale = cache.lookup("sig-a", 11);
    EXPECT_EQ(stale.outcome, dcp::CacheOutcome::Stale);
    EXPECT_EQ(stale.identity, "l1") << "stale lookups still report the "
                                       "previous identity for triage";
    EXPECT_EQ(cache.stats().stale, 1u);

    // Revalidation refreshes the clock.
    cache.storeIdentity("sig-a", "l1", 11);
    EXPECT_EQ(cache.lookup("sig-a", 12).outcome, dcp::CacheOutcome::Hit);
}

TEST(FingerprintCache, RevalidationFlipDropsCachedClone)
{
    dcp::FingerprintCache cache;
    cache.storeIdentity("sig-a", "l1", 0);
    cache.storeClone("sig-a", tinyModel(3), 0);
    ASSERT_NE(cache.lookup("sig-a", 1).clone, nullptr);

    // Same identity re-stored: the clone survives.
    cache.storeIdentity("sig-a", "l1", 2);
    EXPECT_NE(cache.lookup("sig-a", 3).clone, nullptr);
    EXPECT_EQ(cache.stats().invalidations, 0u);

    // Identity flip: the clone descends from the wrong parent.
    cache.storeIdentity("sig-a", "l2", 4);
    const auto after = cache.lookup("sig-a", 5);
    EXPECT_EQ(after.outcome, dcp::CacheOutcome::Hit);
    EXPECT_EQ(after.identity, "l2");
    EXPECT_EQ(after.clone, nullptr);
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(FingerprintCache, CloneExpiresIndependentlyOfIdentity)
{
    dcp::CacheOptions opts;
    opts.identityTtl = 100;
    opts.cloneTtl = 5;
    dcp::FingerprintCache cache(opts);
    cache.storeIdentity("sig-a", "l1", 0);
    cache.storeClone("sig-a", tinyModel(3), 0);

    const auto fresh = cache.lookup("sig-a", 5);
    EXPECT_EQ(fresh.outcome, dcp::CacheOutcome::Hit);
    EXPECT_TRUE(fresh.cloneFresh);
    ASSERT_NE(fresh.clone, nullptr);

    const auto expired = cache.lookup("sig-a", 6);
    EXPECT_EQ(expired.outcome, dcp::CacheOutcome::Hit)
        << "identity outlives the clone";
    EXPECT_FALSE(expired.cloneFresh);
    EXPECT_EQ(expired.clone, nullptr);
}

TEST(FingerprintCache, ExplicitInvalidateRemovesEntry)
{
    dcp::FingerprintCache cache;
    cache.storeIdentity("sig-a", "l1", 0);
    cache.invalidate("sig-a");
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().invalidations, 1u);
    EXPECT_EQ(cache.lookup("sig-a", 1).outcome, dcp::CacheOutcome::Miss);
    // Invalidating an absent key is a harmless no-op.
    cache.invalidate("sig-zzz");
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

// ---------------------------------------------------------------------
// Session sampler.
// ---------------------------------------------------------------------

TEST(SessionSampler, DeterministicAndSkewed)
{
    const Harness &h = harness();
    dz::SessionSamplerOptions sopts = samplerOptions(64);
    sopts.skewPopularity = 0.9;
    const auto a = dz::sampleSessions(h.zoo, sopts, 42);
    const auto b = dz::sampleSessions(h.zoo, sopts, 42);
    ASSERT_EQ(a.size(), 64u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].lineage, b[i].lineage);
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].index, i);
    }

    // Heavy skew concentrates sessions on few lineages: the most
    // popular one must clearly dominate a uniform share.
    std::map<std::string, std::size_t> counts;
    for (const auto &s : a)
        ++counts[s.lineage->name];
    std::size_t top = 0;
    for (const auto &kv : counts)
        top = std::max(top, kv.second);
    EXPECT_GT(top, a.size() / 2)
        << "skew=0.9 should make the head lineage dominate";
}

// ---------------------------------------------------------------------
// Batched level-1.
// ---------------------------------------------------------------------

TEST(Campaign, IdentifyBatchMatchesSerialIdentify)
{
    PoolGuard guard;
    Harness &h = harness();

    std::vector<dg::KernelTrace> traces;
    std::vector<const dz::ModelIdentity *> victims;
    for (std::size_t i = 0; i < h.zoo.pretrained().size(); ++i) {
        const auto *m = h.zoo.pretrained()[i];
        victims.push_back(m);
        traces.push_back(dg::TraceGenerator(m->signature)
                             .generate(m->arch, 0xabc0 + i));
    }

    sched::setThreads(1);
    std::vector<dc::IdentificationResult> serial;
    for (std::size_t i = 0; i < traces.size(); ++i)
        serial.push_back(h.attack->level1().identify(
            traces[i],
            dc::makeVictimQueryHook(victims[i]->vocabProfile)));

    for (std::size_t threads : kThreadCounts) {
        sched::setThreads(threads);
        std::vector<const dg::KernelTrace *> ptrs;
        std::vector<std::function<std::vector<bool>()>> hooks;
        for (std::size_t i = 0; i < traces.size(); ++i) {
            ptrs.push_back(&traces[i]);
            hooks.push_back(
                dc::makeVictimQueryHook(victims[i]->vocabProfile));
        }
        const auto batch = h.attack->level1().identifyBatch(ptrs, hooks);
        ASSERT_EQ(batch.size(), serial.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EXPECT_EQ(batch[i].pretrainedName, serial[i].pretrainedName);
            EXPECT_EQ(batch[i].topProbability, serial[i].topProbability)
                << "probability must match bit for bit";
            EXPECT_EQ(batch[i].candidates, serial[i].candidates);
            EXPECT_EQ(batch[i].usedQueryProbes,
                      serial[i].usedQueryProbes);
        }
    }
}

// ---------------------------------------------------------------------
// Campaign driver.
// ---------------------------------------------------------------------

TEST(Campaign, RollupMatchesPerVictimGroundTruth)
{
    PoolGuard guard;
    Harness &h = harness();
    sched::setThreads(2);

    const auto sessions =
        dz::sampleSessions(h.zoo, samplerOptions(24), 99);
    dcp::CampaignDriver driver(*h.attack, campaignOptions());
    const auto report = driver.run(sessions);

    ASSERT_EQ(report.sessions, 24u);
    ASSERT_EQ(report.victims.size(), 24u);
    EXPECT_EQ(report.identified + report.abstained, report.sessions);
    EXPECT_EQ(report.timeToClone.total(), 24u);

    // Recount every rollup counter from the per-victim outcomes.
    std::size_t correct = 0, abstained = 0, blackouts = 0, cloned = 0,
                reused = 0, hits = 0;
    for (const auto &v : report.victims) {
        if (v.abstained)
            ++abstained;
        if (v.blackout)
            ++blackouts;
        if (v.cloned)
            ++cloned;
        if (v.cloneReused)
            ++reused;
        if (v.cacheHit)
            ++hits;
        ASSERT_NE(v.lineage, "");
        if (!v.abstained) {
            EXPECT_EQ(v.identityCorrect,
                      v.identifiedParent == v.lineage);
            if (v.identityCorrect)
                ++correct;
        }
    }
    EXPECT_EQ(report.correct, correct);
    EXPECT_EQ(report.abstained, abstained);
    EXPECT_EQ(report.blackouts, blackouts);
    EXPECT_EQ(report.clonesBuilt, cloned);
    EXPECT_EQ(report.cloneReuses, reused);
    EXPECT_EQ(report.cacheHits, hits);

    // Healthy queue, known pool: identification should mostly land.
    EXPECT_EQ(report.abstained, 0u);
    EXPECT_GT(report.identificationAccuracy(), 0.5);
    // Four lineages behind 24 sessions: the cache must carry most of
    // the queue.
    EXPECT_EQ(report.cacheHits + report.cacheMisses + report.cacheStale,
              report.sessions);
    EXPECT_GT(report.cacheHitRate(), 0.5);
    EXPECT_GT(report.cloneReuses, 0u);

    // The JSON view embeds the same victims array.
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"sessions\":24"), std::string::npos);
    EXPECT_NE(json.find("\"victims\":["), std::string::npos);
}

TEST(Campaign, CacheHitsSkipLevelOne)
{
    PoolGuard guard;
    Harness &h = harness();
    sched::setThreads(1);

    obs::ObsConfig cfg;
    cfg.metricsEnabled = true;
    obs::configure(cfg);
    const std::uint64_t identifies_before =
        obs::metrics().counter("level1.identifies");

    const auto sessions =
        dz::sampleSessions(h.zoo, samplerOptions(20), 123);
    dcp::CampaignDriver driver(*h.attack, campaignOptions());
    const auto report = driver.run(sessions);

    const std::uint64_t identifies =
        obs::metrics().counter("level1.identifies") - identifies_before;
    obs::shutdown();

    // Every cache hit skips the classifier: level-1 runs only for
    // misses and stale revalidations (no blackouts in this queue).
    EXPECT_EQ(report.blackouts, 0u);
    EXPECT_EQ(identifies, report.cacheMisses + report.cacheStale);
    EXPECT_GT(report.cacheHits, 0u);
}

TEST(Campaign, ReportByteIdenticalAcrossLanes)
{
    PoolGuard guard;
    Harness &h = harness();

    // Pin wall time: latency attribution is the one legitimately
    // nondeterministic rollup input.
    obs::FakeClock clock;
    obs::setClockForTest(&clock);

    const auto sessions =
        dz::sampleSessions(h.zoo, samplerOptions(16), 77);

    auto run = [&](std::size_t threads) {
        sched::setThreads(threads);
        dcp::CampaignDriver driver(*h.attack, campaignOptions());
        return driver.run(sessions).toJson();
    };

    const std::string reference = run(1);
    EXPECT_FALSE(reference.empty());
    for (std::size_t threads : kThreadCounts)
        EXPECT_EQ(run(threads), reference)
            << "campaign report differs at " << threads << " lanes";

    obs::setClockForTest(nullptr);
}

TEST(Campaign, BlackoutVictimsAbstainWithoutStallingQueue)
{
    PoolGuard guard;
    Harness &h = harness();
    sched::setThreads(2);

    dz::SessionSamplerOptions sopts = samplerOptions(16);
    sopts.blackoutFraction = 0.4;
    auto sessions = dz::sampleSessions(h.zoo, sopts, 31);
    // Make the storm deterministic regardless of sampler draws: force
    // blackouts onto fixed queue positions.
    std::size_t blackouts = 0;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        sessions[i].blackout = (i % 3 == 0);
        sessions[i].traceFaultSeverity = sessions[i].blackout ? 1.0 : 0.0;
        if (sessions[i].blackout)
            ++blackouts;
    }

    dcp::CampaignDriver driver(*h.attack, campaignOptions());
    const auto report = driver.run(sessions);

    // Every session got a verdict: the dark victims abstained, the
    // rest of the queue was processed normally.
    EXPECT_EQ(report.sessions, sessions.size());
    EXPECT_EQ(report.victims.size(), sessions.size());
    EXPECT_EQ(report.abstained, blackouts);
    EXPECT_EQ(report.blackouts, blackouts);
    EXPECT_EQ(report.identified, sessions.size() - blackouts);
    for (const auto &v : report.victims) {
        if (v.blackout) {
            EXPECT_TRUE(v.abstained);
            EXPECT_EQ(v.identifiedParent, "");
            EXPECT_FALSE(v.cloned);
        } else {
            EXPECT_FALSE(v.abstained);
        }
    }
}

TEST(Campaign, WatchdogQuietOnHealthyCampaign)
{
    PoolGuard guard;
    Harness &h = harness();
    sched::setThreads(1);

    obs::ObsConfig cfg;
    cfg.metricsEnabled = true;
    obs::configure(cfg);

    const auto sessions =
        dz::sampleSessions(h.zoo, samplerOptions(16), 55);
    dcp::CampaignDriver driver(*h.attack, campaignOptions());
    const auto report = driver.run(sessions);
    obs::shutdown();

    EXPECT_GT(report.watchdog.ticks, 0u);
    EXPECT_TRUE(report.watchdog.healthy())
        << "healthy campaign must not trip the SLO bands; first "
           "finding: "
        << (report.watchdog.findings.empty()
                ? ""
                : report.watchdog.findings[0].message);
}

TEST(Campaign, FaultStormFlagsAbstainAnomaly)
{
    PoolGuard guard;
    Harness &h = harness();
    sched::setThreads(1);

    obs::ObsConfig cfg;
    cfg.metricsEnabled = true;
    obs::configure(cfg);

    // One batch where most victims are dark: the insufficient-
    // evidence rate over identification attempts crosses the
    // abstain band (0.5 with >= 4 samples).
    dz::SessionSamplerOptions sopts = samplerOptions(8);
    auto sessions = dz::sampleSessions(h.zoo, sopts, 13);
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        sessions[i].blackout = i < 6;
        sessions[i].traceFaultSeverity = sessions[i].blackout ? 1.0 : 0.0;
    }

    dcp::CampaignDriver driver(*h.attack, campaignOptions());
    const auto report = driver.run(sessions);
    obs::shutdown();

    bool flagged = false;
    for (const auto &f : report.watchdog.findings)
        flagged = flagged || f.kind == "abstain_anomaly";
    EXPECT_TRUE(flagged)
        << "a 6/8 blackout batch must trip the abstain detector";
    // The storm still drains the queue.
    EXPECT_EQ(report.sessions, sessions.size());
    EXPECT_EQ(report.abstained, 6u);
}

TEST(Campaign, CachePersistsAcrossRuns)
{
    PoolGuard guard;
    Harness &h = harness();
    sched::setThreads(1);

    const auto sessions =
        dz::sampleSessions(h.zoo, samplerOptions(12), 222);
    dcp::CampaignDriver driver(*h.attack, campaignOptions());

    const auto first = driver.run(sessions);
    EXPECT_GT(first.cacheMisses, 0u);

    // Same queue again: every signature is now warm, so the second
    // run's misses vanish and its hit rate beats the first's. Stats
    // in the report are per-run deltas, not lifetime totals.
    const auto second = driver.run(sessions);
    EXPECT_EQ(second.cacheMisses, 0u);
    EXPECT_GT(second.cacheHitRate(), first.cacheHitRate());
    EXPECT_EQ(second.cacheHits + second.cacheStale, second.sessions);
}
