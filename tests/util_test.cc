/**
 * @file
 * Unit tests for the util library: PRNG, statistics, edit distance,
 * and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/edit_distance.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace du = decepticon::util;

TEST(SplitMix64, ProducesKnownStream)
{
    du::SplitMix64 sm(0);
    const std::uint64_t a = sm.next();
    const std::uint64_t b = sm.next();
    EXPECT_NE(a, b);
    du::SplitMix64 sm2(0);
    EXPECT_EQ(sm2.next(), a);
    EXPECT_EQ(sm2.next(), b);
}

TEST(Rng, DeterministicForSameSeed)
{
    du::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    du::Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.nextU64() != b.nextU64();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval)
{
    du::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    du::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.5, 3.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 3.5);
    }
}

TEST(Rng, UniformIntBounds)
{
    du::Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u) << "all residues should appear";
}

TEST(Rng, UniformIntOneAlwaysZero)
{
    du::Rng rng(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, GaussianMomentsApproximatelyStandard)
{
    du::Rng rng(42);
    std::vector<double> xs;
    for (int i = 0; i < 50000; ++i)
        xs.push_back(rng.gaussian());
    EXPECT_NEAR(du::mean(xs), 0.0, 0.02);
    EXPECT_NEAR(du::stddev(xs), 1.0, 0.02);
}

TEST(Rng, GaussianShiftScale)
{
    du::Rng rng(42);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.gaussian(5.0, 0.5));
    EXPECT_NEAR(du::mean(xs), 5.0, 0.02);
    EXPECT_NEAR(du::stddev(xs), 0.5, 0.02);
}

TEST(Rng, BernoulliRate)
{
    du::Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    du::Rng rng(5);
    const auto picked = rng.sampleWithoutReplacement(100, 30);
    EXPECT_EQ(picked.size(), 30u);
    std::set<std::size_t> s(picked.begin(), picked.end());
    EXPECT_EQ(s.size(), 30u);
    for (auto p : picked)
        EXPECT_LT(p, 100u);
}

TEST(Rng, SampleAllElements)
{
    du::Rng rng(5);
    const auto picked = rng.sampleWithoutReplacement(10, 10);
    std::set<std::size_t> s(picked.begin(), picked.end());
    EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, ShuffleIsPermutation)
{
    du::Rng rng(13);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkedStreamsDiffer)
{
    du::Rng base(77);
    du::Rng a = base.fork(1);
    du::Rng b = base.fork(2);
    bool differ = false;
    for (int i = 0; i < 8; ++i)
        differ |= a.nextU64() != b.nextU64();
    EXPECT_TRUE(differ);
}

TEST(HashString, StableAndDistinct)
{
    EXPECT_EQ(du::hashString("bert"), du::hashString("bert"));
    EXPECT_NE(du::hashString("bert"), du::hashString("gpt2"));
    EXPECT_NE(du::hashString(""), du::hashString("a"));
}

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(du::mean({}), 0.0);
    EXPECT_DOUBLE_EQ(du::mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(du::mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, VarianceAndStddev)
{
    EXPECT_DOUBLE_EQ(du::variance({1.0}), 0.0);
    EXPECT_DOUBLE_EQ(du::variance({2.0, 4.0}), 1.0);
    EXPECT_DOUBLE_EQ(du::stddev({2.0, 4.0}), 1.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(du::percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(du::percentile(xs, 100), 4.0);
    EXPECT_DOUBLE_EQ(du::percentile(xs, 50), 2.5);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    std::vector<double> x{1, 2, 3, 4};
    std::vector<double> y{2, 4, 6, 8};
    EXPECT_NEAR(du::pearson(x, y), 1.0, 1e-12);
    std::vector<double> yn{8, 6, 4, 2};
    EXPECT_NEAR(du::pearson(x, yn), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero)
{
    std::vector<double> x{1, 2, 3};
    std::vector<double> c{5, 5, 5};
    EXPECT_DOUBLE_EQ(du::pearson(x, c), 0.0);
}

TEST(Stats, HistogramBinningAndClamping)
{
    du::Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.99);
    h.add(-5.0);  // clamps into first bin
    h.add(100.0); // clamps into last bin
    EXPECT_EQ(h.counts.front(), 2u);
    EXPECT_EQ(h.counts.back(), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, HistogramBinCenter)
{
    du::Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(Stats, FractionWithinAbs)
{
    std::vector<double> xs{-0.001, 0.0005, 0.5, -2.0};
    EXPECT_DOUBLE_EQ(du::Histogram::fractionWithinAbs(xs, 0.001), 0.5);
    EXPECT_DOUBLE_EQ(du::Histogram::fractionWithinAbs(xs, 10.0), 1.0);
}

TEST(Stats, FitLineRecoversSlope)
{
    std::vector<double> x{0, 1, 2, 3};
    std::vector<double> y{1, 3, 5, 7};
    const auto fit = du::fitLine(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

TEST(EditDistance, KnownCases)
{
    EXPECT_EQ(du::editDistance(std::string("kitten"),
                               std::string("sitting")), 3u);
    EXPECT_EQ(du::editDistance(std::string(""), std::string("abc")), 3u);
    EXPECT_EQ(du::editDistance(std::string("abc"), std::string("abc")), 0u);
}

TEST(EditDistance, IntSequences)
{
    EXPECT_EQ(du::editDistance(std::vector<int>{1, 2, 3},
                               std::vector<int>{1, 3}), 1u);
    EXPECT_EQ(du::editDistance(std::vector<int>{}, std::vector<int>{1}), 1u);
}

TEST(EditDistance, LerCanExceedOne)
{
    // Predictions far longer than the truth give LER > 1 — the regime
    // where Table 2 declares DeepSniffer unusable.
    std::vector<int> truth{1, 2, 3};
    std::vector<int> pred(30, 7);
    EXPECT_GT(du::layerErrorRate(pred, truth), 1.0);
}

TEST(EditDistance, LerZeroForExactMatch)
{
    std::vector<int> seq{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(du::layerErrorRate(seq, seq), 0.0);
}

TEST(Table, AsciiContainsHeadersAndCells)
{
    du::Table t({"name", "value"});
    t.row().cell("foo").cell(1.5, 2);
    t.row().cell("bar").cell(static_cast<long long>(7));
    std::ostringstream oss;
    t.printAscii(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("foo"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("7"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvFormat)
{
    du::Table t({"a", "b"});
    t.row().cell("x").cell(2);
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\nx,2\n");
}

/** Percentile sweep: monotone non-decreasing in p. */
class PercentileMonotone : public ::testing::TestWithParam<int>
{
};

TEST_P(PercentileMonotone, NonDecreasing)
{
    du::Rng rng(GetParam());
    std::vector<double> xs;
    for (int i = 0; i < 200; ++i)
        xs.push_back(rng.gaussian());
    double prev = du::percentile(xs, 0);
    for (int p = 5; p <= 100; p += 5) {
        const double cur = du::percentile(xs, p);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5));

/** Edit distance metric properties over random sequences. */
class EditDistanceProperties : public ::testing::TestWithParam<int>
{
};

TEST_P(EditDistanceProperties, SymmetryAndTriangle)
{
    du::Rng rng(GetParam());
    auto random_seq = [&](std::size_t n) {
        std::vector<int> s(n);
        for (auto &v : s)
            v = static_cast<int>(rng.uniformInt(4));
        return s;
    };
    const auto a = random_seq(12);
    const auto b = random_seq(9);
    const auto c = random_seq(15);
    EXPECT_EQ(du::editDistance(a, b), du::editDistance(b, a));
    EXPECT_LE(du::editDistance(a, c),
              du::editDistance(a, b) + du::editDistance(b, c));
    EXPECT_EQ(du::editDistance(a, a), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceProperties,
                         ::testing::Range(1, 11));
