/**
 * @file
 * Unit tests for the nn substrate. Every backward pass is validated
 * against central finite differences — the foundation all training
 * results in the reproduction rest on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.hh"
#include "nn/conv.hh"
#include "nn/embedding.hh"
#include "nn/layernorm.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"
#include "nn/param.hh"
#include "util/rng.hh"

namespace dn = decepticon::nn;
namespace dt = decepticon::tensor;
namespace du = decepticon::util;

namespace {

/**
 * Check dL/dx for a scalar loss L = sum(weights .* f(x)) where f is a
 * layer's forward map. `forward` must be re-runnable.
 */
void
checkInputGradient(const std::function<dt::Tensor(const dt::Tensor &)>
                       &forward,
                   const std::function<dt::Tensor(const dt::Tensor &)>
                       &backward,
                   dt::Tensor x, const dt::Tensor &loss_weights,
                   float eps = 1e-3f, float tol = 2e-2f)
{
    dt::Tensor y = forward(x);
    ASSERT_EQ(y.size(), loss_weights.size());
    dt::Tensor dy = loss_weights;
    dt::Tensor dx = backward(dy);
    ASSERT_EQ(dx.size(), x.size());

    for (std::size_t i = 0; i < x.size(); ++i) {
        const float orig = x[i];
        x[i] = orig + eps;
        dt::Tensor yp = forward(x);
        x[i] = orig - eps;
        dt::Tensor ym = forward(x);
        x[i] = orig;
        double fd = 0.0;
        for (std::size_t j = 0; j < yp.size(); ++j)
            fd += loss_weights[j] * (yp[j] - ym[j]);
        fd /= 2.0 * eps;
        EXPECT_NEAR(dx[i], fd, tol * std::max(1.0, std::fabs(fd)))
            << "input grad mismatch at " << i;
    }
}

/** Check accumulated parameter gradients by finite differences. */
void
checkParamGradient(dn::Parameter &param,
                   const std::function<dt::Tensor()> &forward,
                   const dt::Tensor &loss_weights,
                   std::size_t max_checks = 12, float eps = 1e-3f,
                   float tol = 2e-2f)
{
    du::Rng rng(99);
    for (std::size_t c = 0; c < std::min(max_checks, param.size()); ++c) {
        const std::size_t i =
            param.size() <= max_checks ? c : rng.uniformInt(param.size());
        const float orig = param.value[i];
        param.value[i] = orig + eps;
        dt::Tensor yp = forward();
        param.value[i] = orig - eps;
        dt::Tensor ym = forward();
        param.value[i] = orig;
        double fd = 0.0;
        for (std::size_t j = 0; j < yp.size(); ++j)
            fd += loss_weights[j] * (yp[j] - ym[j]);
        fd /= 2.0 * eps;
        EXPECT_NEAR(param.grad[i], fd, tol * std::max(1.0, std::fabs(fd)))
            << "param grad mismatch for " << param.name << "[" << i << "]";
    }
}

dt::Tensor
randomTensor(std::vector<std::size_t> shape, std::uint64_t seed,
             float scale = 1.0f)
{
    du::Rng rng(seed);
    dt::Tensor t(std::move(shape));
    t.fillGaussian(rng, scale);
    return t;
}

} // anonymous namespace

TEST(Parameter, ShapesAndZeroGrad)
{
    dn::Parameter p("w", {2, 3});
    EXPECT_EQ(p.size(), 6u);
    p.grad[0] = 5.0f;
    p.zeroGrad();
    EXPECT_EQ(p.grad[0], 0.0f);
}

TEST(Parameter, TotalParamCount)
{
    dn::Parameter a("a", {2, 2});
    dn::Parameter b("b", {3});
    EXPECT_EQ(dn::totalParamCount({&a, &b}), 7u);
}

TEST(Linear, ForwardKnownValues)
{
    du::Rng rng(1);
    dn::Linear lin("l", 2, 2, rng);
    lin.weight.value.fill(0.0f);
    lin.weight.value.at(0, 0) = 1.0f; // y0 = x0
    lin.weight.value.at(1, 1) = 2.0f; // y1 = 2*x1
    lin.bias.value[0] = 0.5f;

    dt::Tensor x({1, 2});
    x[0] = 3.0f;
    x[1] = 4.0f;
    dt::Tensor y = lin.forward(x);
    EXPECT_FLOAT_EQ(y[0], 3.5f);
    EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(Linear, InputGradientMatchesFiniteDifference)
{
    du::Rng rng(2);
    dn::Linear lin("l", 4, 3, rng);
    dt::Tensor x = randomTensor({2, 4}, 3);
    dt::Tensor lw = randomTensor({2, 3}, 4);
    checkInputGradient(
        [&](const dt::Tensor &in) { return lin.forward(in); },
        [&](const dt::Tensor &dy) { return lin.backward(dy); }, x, lw);
}

TEST(Linear, ParamGradientMatchesFiniteDifference)
{
    du::Rng rng(5);
    dn::Linear lin("l", 4, 3, rng);
    dt::Tensor x = randomTensor({2, 4}, 6);
    dt::Tensor lw = randomTensor({2, 3}, 7);

    dn::zeroGrads(lin.params());
    lin.forward(x);
    lin.backward(lw);
    auto fwd = [&]() { return lin.forward(x); };
    checkParamGradient(lin.weight, fwd, lw);
    checkParamGradient(lin.bias, fwd, lw);
}

TEST(Linear, GradAccumulatesAcrossCalls)
{
    du::Rng rng(8);
    dn::Linear lin("l", 2, 2, rng);
    dt::Tensor x = randomTensor({1, 2}, 9);
    dt::Tensor dy({1, 2}, 1.0f);
    dn::zeroGrads(lin.params());
    lin.forward(x);
    lin.backward(dy);
    const float g1 = lin.weight.grad[0];
    lin.forward(x);
    lin.backward(dy);
    EXPECT_NEAR(lin.weight.grad[0], 2.0f * g1, 1e-6f);
}

TEST(Relu, ForwardClampsNegatives)
{
    dn::Relu relu;
    dt::Tensor x({4});
    x[0] = -1.0f;
    x[1] = 0.0f;
    x[2] = 2.0f;
    x[3] = -0.5f;
    dt::Tensor y = relu.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(Relu, BackwardMasksNegatives)
{
    dn::Relu relu;
    dt::Tensor x({2});
    x[0] = -1.0f;
    x[1] = 1.0f;
    relu.forward(x);
    dt::Tensor dy({2}, 1.0f);
    dt::Tensor dx = relu.backward(dy);
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
    EXPECT_FLOAT_EQ(dx[1], 1.0f);
}

TEST(Gelu, MatchesReferencePoints)
{
    dn::Gelu gelu;
    dt::Tensor x({3});
    x[0] = 0.0f;
    x[1] = 1.0f;
    x[2] = -1.0f;
    dt::Tensor y = gelu.forward(x);
    EXPECT_NEAR(y[0], 0.0f, 1e-6f);
    EXPECT_NEAR(y[1], 0.8412f, 1e-3f);
    EXPECT_NEAR(y[2], -0.1588f, 1e-3f);
}

TEST(Gelu, GradientMatchesFiniteDifference)
{
    dn::Gelu gelu;
    dt::Tensor x = randomTensor({6}, 11);
    dt::Tensor lw = randomTensor({6}, 12);
    checkInputGradient(
        [&](const dt::Tensor &in) { return gelu.forward(in); },
        [&](const dt::Tensor &dy) { return gelu.backward(dy); }, x, lw);
}

TEST(LayerNorm, NormalizesRows)
{
    dn::LayerNorm ln("ln", 4);
    dt::Tensor x({2, 4});
    for (std::size_t i = 0; i < 8; ++i)
        x[i] = static_cast<float>(i);
    dt::Tensor y = ln.forward(x);
    for (std::size_t r = 0; r < 2; ++r) {
        float m = 0.0f, v = 0.0f;
        for (std::size_t c = 0; c < 4; ++c)
            m += y.at(r, c);
        m /= 4.0f;
        for (std::size_t c = 0; c < 4; ++c)
            v += (y.at(r, c) - m) * (y.at(r, c) - m);
        v /= 4.0f;
        EXPECT_NEAR(m, 0.0f, 1e-5f);
        EXPECT_NEAR(v, 1.0f, 1e-3f);
    }
}

TEST(LayerNorm, GammaBetaApplied)
{
    dn::LayerNorm ln("ln", 2);
    ln.gamma.value[0] = 2.0f;
    ln.beta.value[1] = 1.0f;
    dt::Tensor x({1, 2});
    x[0] = -1.0f;
    x[1] = 1.0f;
    dt::Tensor y = ln.forward(x);
    EXPECT_NEAR(y[0], -2.0f, 1e-3f);
    EXPECT_NEAR(y[1], 2.0f, 1e-3f);
}

TEST(LayerNorm, InputGradientMatchesFiniteDifference)
{
    dn::LayerNorm ln("ln", 5);
    dt::Tensor x = randomTensor({3, 5}, 13);
    dt::Tensor lw = randomTensor({3, 5}, 14);
    checkInputGradient(
        [&](const dt::Tensor &in) { return ln.forward(in); },
        [&](const dt::Tensor &dy) { return ln.backward(dy); }, x, lw);
}

TEST(LayerNorm, ParamGradientMatchesFiniteDifference)
{
    dn::LayerNorm ln("ln", 5);
    dt::Tensor x = randomTensor({3, 5}, 15);
    dt::Tensor lw = randomTensor({3, 5}, 16);
    dn::zeroGrads(ln.params());
    ln.forward(x);
    ln.backward(lw);
    auto fwd = [&]() { return ln.forward(x); };
    checkParamGradient(ln.gamma, fwd, lw);
    checkParamGradient(ln.beta, fwd, lw);
}

TEST(Embedding, LookupReturnsRows)
{
    du::Rng rng(17);
    dn::Embedding emb("e", 10, 4, rng);
    dt::Tensor out = emb.forward({3, 7, 3});
    EXPECT_EQ(out.dim(0), 3u);
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_EQ(out.at(0, j), emb.table.value.at(3, j));
        EXPECT_EQ(out.at(0, j), out.at(2, j));
        EXPECT_EQ(out.at(1, j), emb.table.value.at(7, j));
    }
}

TEST(Embedding, BackwardScatterAddsRepeatedTokens)
{
    du::Rng rng(18);
    dn::Embedding emb("e", 10, 2, rng);
    emb.forward({5, 5});
    dt::Tensor dy({2, 2}, 1.0f);
    dn::zeroGrads(emb.params());
    emb.backward(dy);
    EXPECT_FLOAT_EQ(emb.table.grad.at(5, 0), 2.0f);
    EXPECT_FLOAT_EQ(emb.table.grad.at(4, 0), 0.0f);
}

TEST(Conv2d, ForwardKnownValues)
{
    du::Rng rng(19);
    dn::Conv2d conv("c", 1, 1, 2, rng);
    conv.weight.value.fill(1.0f); // 2x2 box filter
    conv.bias.value[0] = 0.5f;
    dt::Tensor x({1, 1, 3, 3});
    for (std::size_t i = 0; i < 9; ++i)
        x[i] = static_cast<float>(i); // 0..8
    dt::Tensor y = conv.forward(x);
    ASSERT_EQ(y.dim(2), 2u);
    // window (0,0): 0+1+3+4 = 8, plus bias.
    EXPECT_FLOAT_EQ(y[0], 8.5f);
    // window (1,1): 4+5+7+8 = 24, plus bias.
    EXPECT_FLOAT_EQ(y[3], 24.5f);
}

TEST(Conv2d, OutputShape)
{
    du::Rng rng(20);
    dn::Conv2d conv("c", 3, 8, 5, rng);
    dt::Tensor x = randomTensor({2, 3, 12, 10}, 21, 0.5f);
    dt::Tensor y = conv.forward(x);
    EXPECT_EQ(y.shape(),
              (std::vector<std::size_t>{2, 8, 8, 6}));
}

TEST(Conv2d, InputGradientMatchesFiniteDifference)
{
    du::Rng rng(22);
    dn::Conv2d conv("c", 2, 3, 3, rng);
    dt::Tensor x = randomTensor({1, 2, 5, 5}, 23, 0.5f);
    dt::Tensor lw = randomTensor({1, 3, 3, 3}, 24);
    checkInputGradient(
        [&](const dt::Tensor &in) { return conv.forward(in); },
        [&](const dt::Tensor &dy) { return conv.backward(dy); }, x, lw);
}

TEST(Conv2d, ParamGradientMatchesFiniteDifference)
{
    du::Rng rng(25);
    dn::Conv2d conv("c", 2, 2, 3, rng);
    dt::Tensor x = randomTensor({1, 2, 6, 6}, 26, 0.5f);
    dt::Tensor lw = randomTensor({1, 2, 4, 4}, 27);
    dn::zeroGrads(conv.params());
    conv.forward(x);
    conv.backward(lw);
    auto fwd = [&]() { return conv.forward(x); };
    checkParamGradient(conv.weight, fwd, lw);
    checkParamGradient(conv.bias, fwd, lw);
}

TEST(MaxPool2d, ForwardSelectsMaxima)
{
    dn::MaxPool2d pool(2, 2);
    dt::Tensor x({1, 1, 4, 4});
    for (std::size_t i = 0; i < 16; ++i)
        x[i] = static_cast<float>(i);
    dt::Tensor y = pool.forward(x);
    ASSERT_EQ(y.dim(2), 2u);
    EXPECT_FLOAT_EQ(y[0], 5.0f);
    EXPECT_FLOAT_EQ(y[3], 15.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax)
{
    dn::MaxPool2d pool(2, 2);
    dt::Tensor x({1, 1, 2, 2});
    x[0] = 1.0f;
    x[1] = 4.0f;
    x[2] = 2.0f;
    x[3] = 3.0f;
    pool.forward(x);
    dt::Tensor dy({1, 1, 1, 1}, 2.0f);
    dt::Tensor dx = pool.backward(dy);
    EXPECT_FLOAT_EQ(dx[1], 2.0f);
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
    EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(MaxPool2d, DropsPartialWindows)
{
    dn::MaxPool2d pool(2, 2);
    dt::Tensor x({1, 1, 5, 5}, 1.0f);
    dt::Tensor y = pool.forward(x);
    EXPECT_EQ(y.dim(2), 2u);
    EXPECT_EQ(y.dim(3), 2u);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC)
{
    dn::SoftmaxCrossEntropy loss;
    dt::Tensor logits({2, 4});
    const float l = loss.forward(logits, {0, 3});
    EXPECT_NEAR(l, std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow)
{
    dn::SoftmaxCrossEntropy loss;
    dt::Tensor logits = randomTensor({3, 5}, 28);
    loss.forward(logits, {1, 2, 4});
    dt::Tensor d = loss.backward();
    for (std::size_t r = 0; r < 3; ++r) {
        float s = 0.0f;
        for (std::size_t c = 0; c < 5; ++c)
            s += d.at(r, c);
        EXPECT_NEAR(s, 0.0f, 1e-6f);
    }
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference)
{
    dn::SoftmaxCrossEntropy loss;
    dt::Tensor logits = randomTensor({2, 3}, 29);
    const std::vector<int> labels{2, 0};
    loss.forward(logits, labels);
    dt::Tensor d = loss.backward();
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        dt::Tensor lp = logits, lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        dn::SoftmaxCrossEntropy l2;
        const float fp = l2.forward(lp, labels);
        const float fm = l2.forward(lm, labels);
        EXPECT_NEAR(d[i], (fp - fm) / (2 * eps), 1e-3f);
    }
}

TEST(ArgmaxRows, PicksMaxIndex)
{
    dt::Tensor logits({2, 3});
    logits.at(0, 1) = 5.0f;
    logits.at(1, 2) = 3.0f;
    const auto preds = dn::argmaxRows(logits);
    EXPECT_EQ(preds[0], 1);
    EXPECT_EQ(preds[1], 2);
}

TEST(Sgd, StepMovesAgainstGradient)
{
    dn::Parameter p("p", {1});
    p.value[0] = 1.0f;
    p.grad[0] = 2.0f;
    dn::Sgd sgd({&p}, 0.1f);
    sgd.step();
    EXPECT_NEAR(p.value[0], 0.8f, 1e-6f);
}

TEST(Sgd, WeightDecayShrinksWeights)
{
    dn::Parameter p("p", {1});
    p.value[0] = 1.0f;
    p.grad[0] = 0.0f;
    dn::Sgd sgd({&p}, 0.1f, 0.0f, 0.5f);
    sgd.step();
    EXPECT_NEAR(p.value[0], 0.95f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates)
{
    dn::Parameter p("p", {1});
    p.grad[0] = 1.0f;
    dn::Sgd sgd({&p}, 0.1f, 0.9f);
    sgd.step(); // v=1, w=-0.1
    sgd.step(); // v=1.9, w=-0.29
    EXPECT_NEAR(p.value[0], -0.29f, 1e-5f);
}

TEST(Adam, ConvergesOnQuadratic)
{
    // Minimize (w - 3)^2 by gradient descent with Adam.
    dn::Parameter p("p", {1});
    dn::Adam adam({&p}, 0.1f);
    for (int i = 0; i < 300; ++i) {
        p.grad[0] = 2.0f * (p.value[0] - 3.0f);
        adam.step();
    }
    EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Adam, ZeroGradClearsAll)
{
    dn::Parameter p("p", {2});
    p.grad[0] = 1.0f;
    p.grad[1] = 2.0f;
    dn::Adam adam({&p}, 0.1f);
    adam.zeroGrad();
    EXPECT_EQ(p.grad[0], 0.0f);
    EXPECT_EQ(p.grad[1], 0.0f);
}

/** Conv/pool output-size sweep. */
class ConvShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ConvShapeSweep, ForwardBackwardShapesConsistent)
{
    const auto [size, kernel] = GetParam();
    if (size < kernel)
        GTEST_SKIP();
    du::Rng rng(31);
    dn::Conv2d conv("c", 1, 2, static_cast<std::size_t>(kernel), rng);
    dt::Tensor x = randomTensor(
        {1, 1, static_cast<std::size_t>(size),
         static_cast<std::size_t>(size)}, 32, 0.5f);
    dt::Tensor y = conv.forward(x);
    const auto out = static_cast<std::size_t>(size - kernel + 1);
    EXPECT_EQ(y.dim(2), out);
    dt::Tensor dx = conv.backward(y);
    EXPECT_EQ(dx.shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConvShapeSweep,
                         ::testing::Combine(::testing::Values(5, 8, 12),
                                            ::testing::Values(2, 3, 5)));

#include <sstream>

#include "nn/serialize.hh"

TEST(Serialize, RoundTripExact)
{
    du::Rng rng(41);
    dn::Linear a("lin", 4, 3, rng);
    dn::Parameter extra("extra", {2, 2});
    extra.value.fillGaussian(rng, 1.0f);

    std::stringstream buf;
    dn::ParamRefs src{&a.weight, &a.bias, &extra};
    ASSERT_TRUE(dn::saveParams(buf, src));

    dn::Linear b("lin", 4, 3, rng); // different random init
    dn::Parameter extra2("extra", {2, 2});
    dn::ParamRefs dst{&b.weight, &b.bias, &extra2};
    ASSERT_TRUE(dn::loadParams(buf, dst));

    for (std::size_t i = 0; i < a.weight.size(); ++i)
        EXPECT_EQ(b.weight.value[i], a.weight.value[i]);
    for (std::size_t i = 0; i < extra.size(); ++i)
        EXPECT_EQ(extra2.value[i], extra.value[i]);
}

TEST(Serialize, RejectsNameMismatch)
{
    du::Rng rng(42);
    dn::Parameter a("alpha", {3});
    a.value.fillGaussian(rng, 1.0f);
    std::stringstream buf;
    ASSERT_TRUE(dn::saveParams(buf, {&a}));
    dn::Parameter b("beta", {3});
    EXPECT_FALSE(dn::loadParams(buf, {&b}));
}

TEST(Serialize, RejectsShapeMismatch)
{
    du::Rng rng(43);
    dn::Parameter a("p", {3});
    std::stringstream buf;
    ASSERT_TRUE(dn::saveParams(buf, {&a}));
    dn::Parameter b("p", {4});
    EXPECT_FALSE(dn::loadParams(buf, {&b}));
}

TEST(Serialize, RejectsGarbageStream)
{
    std::stringstream buf;
    buf << "not a checkpoint";
    dn::Parameter p("p", {1});
    EXPECT_FALSE(dn::loadParams(buf, {&p}));
}

TEST(Serialize, RejectsCountMismatch)
{
    du::Rng rng(44);
    dn::Parameter a("a", {2});
    dn::Parameter b("b", {2});
    std::stringstream buf;
    ASSERT_TRUE(dn::saveParams(buf, {&a, &b}));
    EXPECT_FALSE(dn::loadParams(buf, {&a}));
}
