/**
 * @file
 * Tests for the telemetry layer: metrics registry semantics and JSONL
 * round-trips, tracer span nesting under a deterministic fake clock,
 * Chrome trace-event export validity (parsed back with the bundled
 * JSON reader), the near-zero-cost disabled path, DECEPTICON_OBS spec
 * parsing, and the BitProbeChannel::resetStats() regression (a reset
 * must re-publish zeroed gauges, never leave stale ones).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "extraction/resilient.hh"
#include "extraction/selective.hh"
#include "obs/clock.hh"
#include "obs/flight.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/quantile.hh"
#include "obs/tracer.hh"
#include "obs/watchdog.hh"
#include "sched/sched.hh"
#include "util/rng.hh"

namespace dob = decepticon::obs;
namespace dex = decepticon::extraction;

namespace {

dex::SnapshotOracle
makeOracle(std::uint64_t seed)
{
    decepticon::util::Rng rng(seed);
    std::vector<std::vector<float>> groups(2);
    for (std::size_t i = 0; i < 16; ++i)
        groups[0].push_back(static_cast<float>(rng.gaussian(0.0, 0.2)));
    for (std::size_t i = 0; i < 4; ++i)
        groups[1].push_back(static_cast<float>(rng.gaussian(0.0, 0.5)));
    return dex::SnapshotOracle(std::move(groups));
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms)
{
    dob::MetricsRegistry reg;
    EXPECT_FALSE(reg.hasCounter("c"));
    EXPECT_EQ(reg.counter("c"), 0u);

    reg.add("c");
    reg.add("c", 4);
    EXPECT_TRUE(reg.hasCounter("c"));
    EXPECT_EQ(reg.counter("c"), 5u);

    reg.setGauge("g", 1.5);
    reg.setGauge("g", 2.5); // latest value wins
    EXPECT_TRUE(reg.hasGauge("g"));
    EXPECT_DOUBLE_EQ(reg.gauge("g"), 2.5);

    reg.observe("h", 0.25, 0.0, 1.0, 4);
    reg.observe("h", 0.30, 0.0, 2.0, 99); // shape: first writer wins
    reg.observe("h", 0.90);
    const auto h = reg.histogram("h");
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->counts.size(), 4u);
    EXPECT_EQ(h->total(), 3u);
    EXPECT_DOUBLE_EQ(h->hi, 1.0);

    reg.reset();
    EXPECT_FALSE(reg.hasCounter("c"));
    EXPECT_FALSE(reg.hasGauge("g"));
    EXPECT_FALSE(reg.histogram("h").has_value());
}

TEST(MetricsRegistry, ConcurrentCountersSumExactly)
{
    dob::MetricsRegistry reg;
    constexpr int kThreads = 4;
    constexpr int kIncrements = 2000;
    // lint: suppress(R4) thread-safety test must race the registry
    // with threads the sched pool does not serialize
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&reg]() {
            for (int i = 0; i < kIncrements; ++i)
                reg.add("shared");
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(reg.counter("shared"),
              static_cast<std::uint64_t>(kThreads * kIncrements));
}

TEST(MetricsRegistry, JsonlExportRoundTrips)
{
    dob::MetricsRegistry reg;
    reg.add("bits", 42);
    reg.setGauge("conf\"idence", 0.875); // quote must be escaped
    reg.observe("lat", 0.5, 0.0, 1.0, 2);
    reg.observe("lat", 0.9);

    std::ostringstream oss;
    reg.exportJsonl(oss);

    std::istringstream lines(oss.str());
    std::string line;
    int counters = 0, gauges = 0, histograms = 0;
    while (std::getline(lines, line)) {
        dob::json::Value v;
        std::string err;
        ASSERT_TRUE(dob::json::parse(line, v, &err)) << err << ": "
                                                     << line;
        const auto *type = v.find("type");
        ASSERT_NE(type, nullptr);
        if (type->string == "counter") {
            ++counters;
            EXPECT_EQ(v.find("name")->string, "bits");
            EXPECT_DOUBLE_EQ(v.find("value")->number, 42.0);
        } else if (type->string == "gauge") {
            ++gauges;
            EXPECT_EQ(v.find("name")->string, "conf\"idence");
            EXPECT_DOUBLE_EQ(v.find("value")->number, 0.875);
        } else if (type->string == "histogram") {
            ++histograms;
            EXPECT_EQ(v.find("name")->string, "lat");
            const auto *counts = v.find("counts");
            ASSERT_NE(counts, nullptr);
            ASSERT_TRUE(counts->isArray());
            EXPECT_EQ(counts->array.size(), 2u);
            EXPECT_DOUBLE_EQ(v.find("total")->number, 2.0);
        }
    }
    EXPECT_EQ(counters, 1);
    EXPECT_EQ(gauges, 1);
    EXPECT_EQ(histograms, 1);
}

TEST(MetricsRegistry, JsonObjectExportParses)
{
    dob::MetricsRegistry reg;
    reg.add("runs", 3);
    reg.setGauge("speed", 123.5);
    std::ostringstream oss;
    reg.exportJson(oss);

    dob::json::Value v;
    std::string err;
    ASSERT_TRUE(dob::json::parse(oss.str(), v, &err)) << err;
    const auto *counters = v.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_DOUBLE_EQ(counters->find("runs")->number, 3.0);
    const auto *gauges = v.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_DOUBLE_EQ(gauges->find("speed")->number, 123.5);
}

// ---------------------------------------------------------------------
// Tracer + Span under a deterministic clock
// ---------------------------------------------------------------------

TEST(Tracer, SpanNestingAndTimingUnderFakeClock)
{
    dob::FakeClock clock;
    dob::Tracer tracer(clock);

    {
        dob::Span outer(&tracer, "outer", "test");
        clock.advance(10);
        {
            dob::Span inner(&tracer, "inner", "test");
            clock.advance(5);
            inner.arg("layer", std::uint64_t{3});
        }
        clock.advance(7);
    }

    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    // Begin order: outer first.
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].ts, 0u);
    EXPECT_EQ(events[0].dur, 22u);
    EXPECT_EQ(events[0].depth, 0);
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[1].ts, 10u);
    EXPECT_EQ(events[1].dur, 5u);
    EXPECT_EQ(events[1].depth, 1);
    // Child contained within the parent.
    EXPECT_GE(events[1].ts, events[0].ts);
    EXPECT_LE(events[1].ts + events[1].dur,
              events[0].ts + events[0].dur);
    ASSERT_EQ(events[1].args.size(), 1u);
    EXPECT_EQ(events[1].args[0].first, "layer");
    EXPECT_EQ(events[1].args[0].second, "3");
}

TEST(Tracer, ChromeTraceExportIsValidJson)
{
    dob::FakeClock clock;
    dob::Tracer tracer(clock);
    {
        dob::Span a(&tracer, "phase_a", "attack");
        a.arg("note", std::string("hello \"world\""));
        clock.advance(100);
    }
    {
        dob::Span b(&tracer, "phase_b", "attack");
        clock.advance(50);
    }

    std::ostringstream oss;
    tracer.exportChromeTrace(oss);

    dob::json::Value v;
    std::string err;
    ASSERT_TRUE(dob::json::parse(oss.str(), v, &err)) << err;
    const auto *events = v.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->array.size(), 2u);
    for (const auto &ev : events->array) {
        EXPECT_EQ(ev.find("ph")->string, "X");
        EXPECT_TRUE(ev.find("ts")->isNumber());
        EXPECT_TRUE(ev.find("dur")->isNumber());
        EXPECT_DOUBLE_EQ(ev.find("pid")->number, 1.0);
    }
    EXPECT_EQ(events->array[0].find("name")->string, "phase_a");
    EXPECT_DOUBLE_EQ(events->array[0].find("dur")->number, 100.0);
    EXPECT_EQ(
        events->array[0].find("args")->find("note")->string,
        "hello \"world\"");
    ASSERT_NE(v.find("displayTimeUnit"), nullptr);
}

TEST(Tracer, SpanMoveTransfersOwnership)
{
    dob::FakeClock clock;
    dob::Tracer tracer(clock);
    {
        dob::Span a(&tracer, "moved", "test");
        clock.advance(3);
        dob::Span b(std::move(a));
        EXPECT_FALSE(a.active()); // NOLINT(bugprone-use-after-move)
        EXPECT_TRUE(b.active());
        clock.advance(4);
    }
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].dur, 7u); // closed exactly once, at b's exit
}

TEST(Tracer, CrossThreadEndUnwindsTheBeginningThreadsDepth)
{
    // Regression: a span begun on the main thread but closed from
    // another thread (a moved Span joining pool work) used to
    // decrement the CLOSING thread's depth. The begin thread was left
    // with a phantom nesting level, so its next span rendered one
    // level too deep, and the closer's depth could underflow.
    dob::FakeClock clock;
    dob::Tracer tracer(clock);

    const std::size_t handle = tracer.beginSpan("cross", "test");
    clock.advance(5);
    // lint: suppress(R4) regression test needs a span closed from a
    // foreign thread, outside any pool bookkeeping
    std::thread closer([&] { tracer.endSpan(handle); });
    closer.join();

    // The main thread's depth must be back to 0: a fresh span here is
    // top-level again.
    const std::size_t next = tracer.beginSpan("after", "test");
    tracer.endSpan(next);

    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].dur, 5u);
    EXPECT_EQ(events[1].depth, 0) << "phantom depth left behind";
    EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(Tracer, ConcurrentWorkerSpansKeepPerThreadDepths)
{
    // Hammer the tracer from several threads at once: every thread's
    // spans must nest independently (depth 0 then 1 per iteration)
    // and the event log must hold exactly the expected span count.
    dob::FakeClock clock;
    dob::Tracer tracer(clock);
    constexpr int kThreads = 4;
    constexpr int kRounds = 25;

    // lint: suppress(R4) per-thread depth accounting is the thing
    // under test; raw threads give each worker its own os tid
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&] {
            for (int r = 0; r < kRounds; ++r) {
                const std::size_t outer =
                    tracer.beginSpan("outer", "test");
                const std::size_t inner =
                    tracer.beginSpan("inner", "test");
                tracer.endSpan(inner);
                tracer.endSpan(outer);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    const auto events = tracer.events();
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(kThreads * kRounds * 2));
    for (const auto &ev : events) {
        if (ev.name == "outer")
            EXPECT_EQ(ev.depth, 0);
        else
            EXPECT_EQ(ev.depth, 1);
        EXPECT_GE(ev.tid, 1);
        EXPECT_LE(ev.tid, kThreads);
    }
}

// ---------------------------------------------------------------------
// Disabled path (the default): no-ops all the way down
// ---------------------------------------------------------------------

TEST(ObsFacade, DisabledPathIsInert)
{
    dob::shutdown(); // known-off state
    EXPECT_FALSE(dob::metricsEnabled());
    EXPECT_FALSE(dob::traceEnabled());
    EXPECT_EQ(dob::tracer(), nullptr);

    // Free functions must not materialize anything while disabled.
    dob::count("ghost.counter", 9);
    dob::gaugeSet("ghost.gauge", 1.0);
    dob::observe("ghost.hist", 0.5);
    {
        auto sp = dob::span("ghost.span");
        EXPECT_FALSE(sp.active());
        sp.arg("k", std::string("v")); // must be a no-op, not a crash
    }
    EXPECT_FALSE(dob::metrics().hasCounter("ghost.counter"));
    EXPECT_FALSE(dob::metrics().hasGauge("ghost.gauge"));
    EXPECT_FALSE(dob::metrics().histogram("ghost.hist").has_value());

    // The compile-time contract of the no-op path (mirrors the
    // static_asserts in tracer.hh).
    static_assert(sizeof(dob::Span) <= 2 * sizeof(void *),
                  "Span must stay a two-word handle");
    static_assert(std::is_nothrow_destructible_v<dob::Span>,
                  "Span teardown must be noexcept");
}

TEST(ObsFacade, EnabledFacadeCollectsAndShutdownClears)
{
    dob::ObsConfig cfg;
    cfg.metricsEnabled = true;
    cfg.traceEnabled = true;
    dob::configure(cfg);

    dob::FakeClock clock;
    dob::setClockForTest(&clock);

    dob::count("live.counter", 2);
    dob::gaugeSet("live.gauge", 0.5);
    {
        auto sp = dob::span("live.span", "test");
        EXPECT_TRUE(sp.active());
        clock.advance(11);
    }
    EXPECT_EQ(dob::metrics().counter("live.counter"), 2u);
    ASSERT_NE(dob::tracer(), nullptr);
    const auto events = dob::tracer()->events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "live.span");
    EXPECT_EQ(events[0].dur, 11u);

    dob::setClockForTest(nullptr);
    dob::shutdown();
    EXPECT_FALSE(dob::metricsEnabled());
    EXPECT_FALSE(dob::metrics().hasCounter("live.counter"));
    EXPECT_EQ(dob::tracer(), nullptr);
}

TEST(ObsFacade, ParseObsSpec)
{
    const auto both =
        dob::parseObsSpec("trace:/tmp/a.json,metrics:/tmp/b.jsonl");
    EXPECT_TRUE(both.traceEnabled);
    EXPECT_TRUE(both.metricsEnabled);
    EXPECT_EQ(both.tracePath, "/tmp/a.json");
    EXPECT_EQ(both.metricsPath, "/tmp/b.jsonl");

    const auto bare = dob::parseObsSpec("metrics");
    EXPECT_TRUE(bare.metricsEnabled);
    EXPECT_FALSE(bare.traceEnabled);
    EXPECT_TRUE(bare.metricsPath.empty());

    const auto on = dob::parseObsSpec("on");
    EXPECT_TRUE(on.metricsEnabled);
    EXPECT_TRUE(on.traceEnabled);

    const auto off = dob::parseObsSpec("");
    EXPECT_FALSE(off.metricsEnabled);
    EXPECT_FALSE(off.traceEnabled);
}

// ---------------------------------------------------------------------
// Satellite regression: resetStats() must re-publish zeroed gauges
// ---------------------------------------------------------------------

TEST(BitProbeChannel, ResetStatsRepublishesZeroedGauges)
{
    dob::ObsConfig cfg;
    cfg.metricsEnabled = true;
    dob::configure(cfg);

    const auto oracle = makeOracle(7);
    dex::BitProbeChannel channel(oracle);
    for (int bit = 22; bit < 31; ++bit)
        channel.readBit(0, 1, bit);
    ASSERT_GT(channel.stats().bitsRead, 0u);

    channel.stats().toMetrics(dob::metrics());
    EXPECT_GT(dob::metrics().gauge("probe.bits_read"), 0.0);
    EXPECT_GT(dob::metrics().gauge("probe.hammer_rounds"), 0.0);

    // The regression: resetting the channel ledger must push the
    // zeroed snapshot through the registry, not leave stale values.
    channel.resetStats();
    EXPECT_EQ(channel.stats().bitsRead, 0u);
    EXPECT_TRUE(dob::metrics().hasGauge("probe.bits_read"));
    EXPECT_DOUBLE_EQ(dob::metrics().gauge("probe.bits_read"), 0.0);
    EXPECT_DOUBLE_EQ(dob::metrics().gauge("probe.hammer_rounds"), 0.0);

    dob::shutdown();
}

TEST(StatStructs, ToMetricsPublishesGauges)
{
    dob::MetricsRegistry reg;

    dex::ExtractionStats es;
    es.totalWeights = 100;
    es.weightsSkipped = 60;
    es.bitsChecked = 80;
    es.fallbackBits = 3;
    es.toMetrics(reg);
    EXPECT_DOUBLE_EQ(reg.gauge("extract.total_weights"), 100.0);
    EXPECT_DOUBLE_EQ(reg.gauge("extract.weights_skipped"), 60.0);
    EXPECT_DOUBLE_EQ(reg.gauge("extract.fallback_bits"), 3.0);
    EXPECT_DOUBLE_EQ(reg.gauge("extract.weights_skipped_fraction"), 0.6);

    dex::ReliabilityStats rs;
    rs.logicalBits = 10;
    rs.physicalReads = 30;
    rs.toMetrics(reg, "rel");
    EXPECT_DOUBLE_EQ(reg.gauge("rel.logical_bits"), 10.0);
    EXPECT_DOUBLE_EQ(reg.gauge("rel.amplification"), 3.0);
}

// ---------------------------------------------------------------------
// LogHistogram (obs v2 latency quantiles)
// ---------------------------------------------------------------------

TEST(LogHistogram, QuantileAccuracyVsExactSort)
{
    decepticon::util::Rng rng(42);
    dob::LogHistogram hist;
    std::vector<double> samples;
    samples.reserve(4000);
    for (int i = 0; i < 4000; ++i) {
        // Heavy-tailed latency-ish distribution spanning ~5 octaves.
        const double v = 20.0 * std::exp(rng.gaussian(0.0, 1.2));
        samples.push_back(v);
        hist.add(v);
    }
    std::sort(samples.begin(), samples.end());

    // One bucket spans a factor of 2^(1/8); the reported geometric
    // midpoint is within 2^(1/16) of any sample in the bucket, plus
    // one bucket of slack for rank rounding at a boundary: the
    // estimate/exact ratio must stay within 2^(3/16) ≈ 1.139.
    const double bound = std::pow(2.0, 3.0 / 16.0) + 1e-9;
    for (double q : {0.50, 0.90, 0.99}) {
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(samples.size())));
        const double exact = samples[rank - 1];
        const double est = hist.quantile(q);
        const double ratio = est > exact ? est / exact : exact / est;
        EXPECT_LE(ratio, bound)
            << "q=" << q << " exact=" << exact << " est=" << est;
    }
}

TEST(LogHistogram, ClipLedgersDeltaAndFromCounts)
{
    dob::LogHistogram hist;
    hist.add(0.25); // below kLo: clamped up, underflow ledger
    hist.add(10.0);
    hist.add(1e15); // beyond the top octave: overflow ledger
    EXPECT_EQ(hist.total(), 3u);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.overflow(), 1u);

    // Snapshot-delta: only the new samples remain.
    dob::LogHistogram later = hist;
    later.add(100.0);
    later.add(100.0);
    const dob::LogHistogram d = later.delta(hist);
    EXPECT_EQ(d.total(), 2u);
    EXPECT_EQ(d.underflow(), 0u);
    const double mid = d.quantile(0.5);
    EXPECT_GT(mid, 100.0 / 1.10);
    EXPECT_LT(mid, 100.0 * 1.10);

    // fromCounts round-trip reproduces quantiles exactly (the
    // geometry is compile-time fixed, so counts are sufficient).
    const dob::LogHistogram re = dob::LogHistogram::fromCounts(
        later.counts(), later.underflow(), later.overflow(),
        later.sum());
    for (double q : {0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(re.quantile(q), later.quantile(q));
}

TEST(MetricsRegistry, LatencyExportCarriesQuantilesAndClipCounts)
{
    dob::MetricsRegistry reg;
    for (int i = 0; i < 99; ++i)
        reg.observeLatency("stage.classify.micros", 100.0);
    reg.observeLatency("stage.classify.micros", 0.25); // underflow

    // util::Histogram ledgers ride along: out-of-range samples into
    // the linear histogram must be counted, not silently clipped.
    reg.observe("score", -0.5, 0.0, 1.0, 4);
    reg.observe("score", 2.0, 0.0, 1.0, 4);
    reg.observe("score", 0.5, 0.0, 1.0, 4);

    std::ostringstream oss;
    reg.exportJson(oss);
    dob::json::Value v;
    std::string err;
    ASSERT_TRUE(dob::json::parse(oss.str(), v, &err)) << err;

    const auto *lat = v.find("latencies");
    ASSERT_NE(lat, nullptr);
    const auto *h = lat->find("stage.classify.micros");
    ASSERT_NE(h, nullptr);
    EXPECT_DOUBLE_EQ(h->find("count")->number, 100.0);
    EXPECT_DOUBLE_EQ(h->find("underflow")->number, 1.0);
    EXPECT_DOUBLE_EQ(h->find("overflow")->number, 0.0);
    const double p50 = h->find("p50")->number;
    EXPECT_GT(p50, 100.0 / 1.10);
    EXPECT_LT(p50, 100.0 * 1.10);
    ASSERT_NE(h->find("counts"), nullptr);

    const auto *hist = v.find("histograms");
    ASSERT_NE(hist, nullptr);
    const auto *score = hist->find("score");
    ASSERT_NE(score, nullptr);
    EXPECT_DOUBLE_EQ(score->find("underflow")->number, 1.0);
    EXPECT_DOUBLE_EQ(score->find("overflow")->number, 1.0);
    EXPECT_DOUBLE_EQ(score->find("total")->number, 3.0);

    // JSONL export carries the same latency line.
    std::ostringstream jl;
    reg.exportJsonl(jl);
    EXPECT_NE(jl.str().find("\"type\":\"latency\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, StallFiresOnceOnFrozenStageAndRearmsAfterRecovery)
{
    dob::MetricsRegistry reg;
    dob::Watchdog dog;
    reg.add("stage.probe.enter", 4);
    reg.add("stage.probe.exit", 1);
    dog.tick(reg); // baseline
    EXPECT_TRUE(dog.tick(reg).empty()) << "1 frozen tick < stallTicks";
    const auto findings = dog.tick(reg); // 2 frozen ticks = stall
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].kind, "stall");
    EXPECT_EQ(findings[0].subject, "probe");
    EXPECT_TRUE(dog.tick(reg).empty()) << "flagged once, not per tick";
    EXPECT_EQ(reg.counter("obs.watchdog.stalls"), 1u);

    // Recovery (exit catches up), then a fresh stall re-flags.
    reg.add("stage.probe.exit", 1);
    EXPECT_TRUE(dog.tick(reg).empty());
    EXPECT_TRUE(dog.tick(reg).empty());
    const auto again = dog.tick(reg);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].kind, "stall");
    EXPECT_EQ(dog.report().findings.size(), 2u);
    EXPECT_FALSE(dog.report().healthy());
}

TEST(Watchdog, QuietOnHealthyRun)
{
    dob::MetricsRegistry reg;
    dob::Watchdog dog;
    for (int t = 0; t < 6; ++t) {
        reg.add("stage.classify.enter", 8);
        reg.add("stage.classify.exit", 8);
        reg.add("fault.capture_attempts", 10);
        reg.add("fault.captures_corrupted", 2); // 20% << 75% band
        reg.add("level1.identifies", 10);
        reg.add("level1.insufficient_evidence", 1); // 10% << 50%
        EXPECT_TRUE(dog.tick(reg).empty()) << "tick " << t;
    }
    EXPECT_TRUE(dog.report().healthy());
    EXPECT_EQ(reg.counter("obs.watchdog.ticks"), 6u);
    EXPECT_EQ(reg.counter("obs.watchdog.findings"), 0u);
}

TEST(Watchdog, FaultSpikeAndAbstainAnomaly)
{
    dob::MetricsRegistry reg;
    dob::Watchdog dog;
    dog.tick(reg); // baseline

    reg.add("fault.capture_attempts", 8);
    reg.add("fault.captures_corrupted", 8); // rate 1.0 > 0.75
    reg.add("level1.identifies", 4);
    reg.add("level1.insufficient_evidence", 3); // rate 0.75 > 0.5
    const auto findings = dog.tick(reg);
    ASSERT_EQ(findings.size(), 2u);
    std::set<std::string> kinds;
    for (const auto &f : findings)
        kinds.insert(f.kind);
    EXPECT_TRUE(kinds.count("fault_spike"));
    EXPECT_TRUE(kinds.count("abstain_anomaly"));
    EXPECT_EQ(reg.counter("obs.watchdog.fault_spikes"), 1u);
    EXPECT_EQ(reg.counter("obs.watchdog.abstain_anomalies"), 1u);

    // Below minSamples no rate is judged, however extreme.
    dob::MetricsRegistry reg2;
    dob::Watchdog dog2;
    dog2.tick(reg2);
    reg2.add("fault.capture_attempts", 2);
    reg2.add("fault.captures_corrupted", 2);
    EXPECT_TRUE(dog2.tick(reg2).empty());

    // WatchdogReport JSON is parseable and carries the findings.
    std::ostringstream oss;
    dog.report().toJson(oss);
    dob::json::Value v;
    std::string err;
    ASSERT_TRUE(dob::json::parse(oss.str(), v, &err)) << err;
    EXPECT_DOUBLE_EQ(v.find("healthy")->number, 0.0);
    ASSERT_TRUE(v.find("findings")->isArray());
    EXPECT_EQ(v.find("findings")->array.size(), 2u);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorder, RingWraparoundKeepsNewestAndCountsDropped)
{
    dob::FlightRecorder rec(8);
    for (int i = 0; i < 20; ++i) {
        dob::FlightEvent ev;
        ev.kind = dob::FlightEventKind::Retry;
        ev.stage = "probe";
        ev.value = static_cast<double>(i);
        ev.ts = static_cast<std::uint64_t>(i);
        rec.record(ev);
    }
    const auto events = rec.canonicalEvents();
    ASSERT_EQ(events.size(), 8u);
    EXPECT_EQ(rec.dropped(), 12u);
    // Oldest overwritten first: the surviving events are 12..19.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].ts, 12u + i);

    // The dump trailer makes the truncation visible.
    std::ostringstream oss;
    rec.dumpJsonl(oss);
    EXPECT_NE(oss.str().find("\"dropped\":12"), std::string::npos);

    rec.clear();
    EXPECT_TRUE(rec.canonicalEvents().empty());
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(ObsFacade, ParseFlightSpecAndModeGate)
{
    dob::ObsConfig cfg;
    dob::parseFlightSpec("on", cfg);
    EXPECT_EQ(cfg.flightMode, dob::FlightMode::On);
    EXPECT_TRUE(cfg.flightPath.empty());
    dob::parseFlightSpec("on:/tmp/f.jsonl", cfg);
    EXPECT_EQ(cfg.flightMode, dob::FlightMode::On);
    EXPECT_EQ(cfg.flightPath, "/tmp/f.jsonl");
    dob::parseFlightSpec("on_error:/tmp/e.jsonl", cfg);
    EXPECT_EQ(cfg.flightMode, dob::FlightMode::OnError);
    EXPECT_EQ(cfg.flightPath, "/tmp/e.jsonl");
    dob::parseFlightSpec("off", cfg);
    EXPECT_EQ(cfg.flightMode, dob::FlightMode::Off);
    EXPECT_TRUE(cfg.flightPath.empty());
    dob::parseFlightSpec("garbage", cfg);
    EXPECT_EQ(cfg.flightMode, dob::FlightMode::Off);

    // Off mode: flightRecord is a no-op, nothing accumulates.
    dob::shutdown();
    dob::flightRecord(dob::FlightEventKind::Fault, "trace_capture");
    EXPECT_TRUE(dob::flightRecorder().canonicalEvents().empty());
    EXPECT_FALSE(dob::flightEnabled());
}

TEST(ObsFacade, StageTimerFeedsCountersLatencyAndFlightEvents)
{
    dob::FakeClock clock(1000);
    dob::setClockForTest(&clock);
    dob::ObsConfig cfg;
    cfg.metricsEnabled = true;
    cfg.flightMode = dob::FlightMode::On;
    dob::configure(cfg);

    {
        dob::StageTimer timer("classify");
        clock.advance(250);
    }
    EXPECT_EQ(dob::metrics().counter("stage.classify.enter"), 1u);
    EXPECT_EQ(dob::metrics().counter("stage.classify.exit"), 1u);
    const auto hist =
        dob::metrics().latency("stage.classify.micros");
    ASSERT_TRUE(hist.has_value());
    EXPECT_EQ(hist->total(), 1u);

    const auto events = dob::flightRecorder().canonicalEvents();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, dob::FlightEventKind::StageEnter);
    EXPECT_EQ(events[1].kind, dob::FlightEventKind::StageExit);
    EXPECT_EQ(events[1].stage, "classify");
    EXPECT_DOUBLE_EQ(events[1].value, 250.0); // duration rides along

    // on_error mode: events accumulate but flush only dumps once an
    // error was noted — the gate the recorder exposes directly.
    dob::shutdown();
    cfg.metricsEnabled = false;
    cfg.flightMode = dob::FlightMode::OnError;
    dob::configure(cfg);
    dob::flightRecord(dob::FlightEventKind::Verdict, "fuse",
                      "insufficient", 0.0);
    EXPECT_FALSE(dob::flightRecorder().errorNoted());
    dob::flightNoteError();
    EXPECT_TRUE(dob::flightRecorder().errorNoted());
    EXPECT_EQ(dob::flightRecorder().canonicalEvents().size(), 1u);

    dob::shutdown();
    dob::setClockForTest(nullptr);
    EXPECT_TRUE(dob::flightRecorder().canonicalEvents().empty());
}

// ---------------------------------------------------------------------
// Multi-run processes (campaign driver regime)
// ---------------------------------------------------------------------

// A long-lived process (campaign driver, REPL) runs many attacks back
// to back against one persistent registry, arming a fresh Watchdog
// per run. The contract across runs: RATE history (fault, abstain
// totals) is absorbed by the baseline tick and never re-judged;
// stages that recovered between runs stay quiet; a stage left
// permanently open keeps being visible — each fresh dog re-flags it
// exactly once, never per tick.
TEST(Watchdog, RearmsCleanlyAcrossSequentialRuns)
{
    dob::MetricsRegistry reg;

    // Run 1 ends badly: a stage left open, a fault storm recorded.
    {
        dob::Watchdog dog;
        dog.tick(reg); // baseline
        reg.add("stage.probe.enter", 4);
        reg.add("stage.probe.exit", 1);
        reg.add("fault.capture_attempts", 8);
        reg.add("fault.captures_corrupted", 8);
        reg.add("level1.identifies", 4);
        reg.add("level1.insufficient_evidence", 3);
        dog.tick(reg);
        dog.tick(reg);
        EXPECT_FALSE(dog.report().healthy());
    }

    // The probe spans drain between runs (the stage recovered).
    reg.add("stage.probe.exit", 3);

    // Run 2: a fresh dog over the same (dirty) registry. The 100%
    // historical fault rate and the abstain spike are pre-baseline —
    // zero deltas — and the recovered stage has no open spans, so a
    // healthy run stays verdict-clean despite run 1's residue.
    {
        dob::Watchdog dog;
        dog.tick(reg); // baseline absorbs run 1's totals
        for (int t = 0; t < 4; ++t) {
            reg.add("stage.classify.enter", 4);
            reg.add("stage.classify.exit", 4);
            reg.add("fault.capture_attempts", 10);
            reg.add("fault.captures_corrupted", 1);
            reg.add("level1.identifies", 10);
            reg.add("level1.insufficient_evidence", 1);
            EXPECT_TRUE(dog.tick(reg).empty()) << "tick " << t;
        }
        EXPECT_TRUE(dog.report().healthy())
            << "run 1's residue must not leak into run 2's verdict";
    }

    // Run 3: the re-armed detector still has teeth — a stage frozen
    // during THIS run is flagged exactly once.
    {
        dob::Watchdog dog;
        dog.tick(reg);
        reg.add("stage.rasterize.enter", 2);
        dog.tick(reg);
        const auto findings = dog.tick(reg);
        ASSERT_EQ(findings.size(), 1u);
        EXPECT_EQ(findings[0].kind, "stall");
        EXPECT_EQ(findings[0].subject, "rasterize");
        EXPECT_TRUE(dog.tick(reg).empty()) << "flag once, not per tick";
    }

    // Run 4: the rasterize spans never closed. A persistent stall is
    // not silently forgiven — the next run's dog re-flags it, once.
    {
        dob::Watchdog dog;
        dog.tick(reg);
        dog.tick(reg);
        const auto findings = dog.tick(reg);
        ASSERT_EQ(findings.size(), 1u);
        EXPECT_EQ(findings[0].kind, "stall");
        EXPECT_EQ(findings[0].subject, "rasterize");
        EXPECT_TRUE(dog.tick(reg).empty());
        EXPECT_TRUE(dog.tick(reg).empty());
    }
}

// Campaign rollups call reset() + republish on the shared registry
// while sched workers are still observing (the flush happens at batch
// boundaries, worker spans may straddle them). The registry guarantees
// internal consistency — no torn histograms, no lost republished
// values — which the TSan `-L sched` gate checks for data races.
TEST(MetricsRegistry, ResetRepublishUnderConcurrentObserve)
{
    namespace sched = decepticon::sched;
    struct PoolGuard
    {
        ~PoolGuard() { sched::setThreads(0); }
    } guard;
    sched::setThreads(4);

    dob::MetricsRegistry reg;
    constexpr std::size_t kTasks = 64;
    // Grain 1: every index is its own pool job. Index 0 repeatedly
    // resets and republishes the rollup while the rest hammer the
    // observe paths.
    sched::parallelFor(kTasks, 1, [&reg](std::size_t i) {
        if (i == 0) {
            for (int round = 0; round < 50; ++round) {
                reg.reset();
                reg.setGauge("campaign.victims_per_sec", 42.0);
                reg.add("campaign.sessions", 1);
                std::ostringstream oss;
                reg.exportJson(oss);
                EXPECT_FALSE(oss.str().empty());
            }
            return;
        }
        for (int round = 0; round < 50; ++round) {
            reg.add("level1.identifies");
            reg.observe("campaign.time_to_clone",
                        static_cast<double>(i * round), 0.0, 1e6, 8);
            reg.observeLatency("stage.classify.micros",
                               static_cast<double>(round));
            reg.setGauge("level1.confidence", 0.5);
        }
    });

    // The storm's interleaving is unspecified; what must hold is that
    // the registry comes back deterministic once quiescent.
    reg.reset();
    reg.add("campaign.sessions", 3);
    reg.setGauge("campaign.cache.hit_rate", 0.75);
    reg.observe("campaign.time_to_clone", 10.0, 0.0, 100.0, 4);
    EXPECT_EQ(reg.counter("campaign.sessions"), 3u);
    EXPECT_DOUBLE_EQ(reg.gauge("campaign.cache.hit_rate"), 0.75);
    const auto h = reg.histogram("campaign.time_to_clone");
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->total(), 1u);

    std::ostringstream oss;
    reg.exportJson(oss);
    dob::json::Value v;
    std::string err;
    ASSERT_TRUE(dob::json::parse(oss.str(), v, &err)) << err;
}

} // namespace
