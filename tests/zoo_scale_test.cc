/**
 * @file
 * Production-scale zoo suite: procedural identity generation and the
 * copy-on-write weight bank, O(queue) session sampling over huge
 * zoos, and the sublinear fingerprint index — determinism across lane
 * counts, recall against exhaustive re-ranking, fallback equivalence
 * below the zoo-size threshold, and campaign report byte-identity on
 * the indexed path.
 */

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.hh"
#include "core/decepticon.hh"
#include "core/two_level.hh"
#include "fingerprint/index/embedding.hh"
#include "fingerprint/index/lsh.hh"
#include "gpusim/trace_generator.hh"
#include "obs/clock.hh"
#include "obs/obs.hh"
#include "sched/sched.hh"
#include "transformer/classifier.hh"
#include "zoo/procedural.hh"
#include "zoo/session.hh"
#include "zoo/zoo.hh"

namespace dc = decepticon::core;
namespace dcp = decepticon::campaign;
namespace df = decepticon::fingerprint;
namespace dg = decepticon::gpusim;
namespace dtr = decepticon::transformer;
namespace dz = decepticon::zoo;
namespace sched = decepticon::sched;
namespace obs = decepticon::obs;

namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

/** Restore the environment-configured global pool on scope exit. */
struct PoolGuard
{
    ~PoolGuard() { sched::setThreads(0); }
};

/** A 256-lineage procedural pool with a trained fingerprint index,
 *  built once and shared read-only across the index tests. */
struct IndexHarness
{
    dz::ModelZoo zoo;
    std::unique_ptr<dc::Decepticon> level1;
    double trainAccuracy = 0.0;
};

IndexHarness &
indexHarness()
{
    static IndexHarness h = [] {
        sched::setThreads(1); // train at a fixed lane count
        IndexHarness x;
        dz::ProceduralZooOptions zopts;
        zopts.identities = 256;
        zopts.families = 16;
        zopts.seed = 11;
        x.zoo = dz::buildProceduralZoo(zopts);
        dc::DecepticonOptions opts;
        opts.seed = 4;
        opts.indexZooThreshold = 64;
        x.level1 = std::make_unique<dc::Decepticon>(opts);
        x.trainAccuracy = x.level1->trainExtractor(x.zoo);
        sched::setThreads(0);
        return x;
    }();
    return h;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Procedural zoo generation.
// ---------------------------------------------------------------------

TEST(ProceduralZoo, FiveThousandIdentitiesDeterministicAndUnique)
{
    dz::ProceduralZooOptions zopts;
    zopts.identities = 5000;
    zopts.families = 32;
    zopts.seed = 9;
    const dz::ModelZoo a = dz::buildProceduralZoo(zopts);
    const dz::ModelZoo b = dz::buildProceduralZoo(zopts);

    ASSERT_EQ(a.models().size(), 5000u);
    EXPECT_EQ(a.pretrainedCount(), 5000u);

    std::set<std::string> names;
    for (std::size_t i = 0; i < a.models().size(); ++i) {
        const dz::ModelIdentity &m = a.models()[i];
        EXPECT_TRUE(m.isPretrained);
        EXPECT_EQ(m.name, b.models()[i].name);
        EXPECT_EQ(m.weightSeed, b.models()[i].weightSeed);
        EXPECT_EQ(m.signature.kernelDialect, static_cast<int>(i))
            << "every release carries a unique kernel dialect";
        names.insert(m.name);
    }
    EXPECT_EQ(names.size(), 5000u) << "identity names must be unique";

    // O(1) indexed accessors agree with the flat list.
    EXPECT_EQ(&a.pretrainedAt(17), &a.models()[17]);
    EXPECT_EQ(a.byName(a.models()[4321].name), &a.models()[4321]);
}

TEST(ProceduralZoo, LazyWeightBankMaterializesOnlyTouchedIdentities)
{
    dz::ProceduralZooOptions zopts;
    zopts.identities = 64;
    zopts.families = 8;
    zopts.seed = 3;
    const dz::ModelZoo zoo = dz::buildProceduralZoo(zopts);

    dz::LazyWeightBank bank;
    EXPECT_EQ(bank.materializedIdentities(), 0u);
    EXPECT_EQ(bank.materializedAncestors(), 0u);

    // models 0 and 8 share family 0 (i % families); model 1 is family 1.
    const dz::WeightStore &w0 = bank.weights(zoo.models()[0]);
    const dz::WeightStore &w0_again = bank.weights(zoo.models()[0]);
    EXPECT_EQ(&w0, &w0_again) << "repeat touches reuse the cached store";
    const dz::WeightStore &w8 = bank.weights(zoo.models()[8]);
    bank.weights(zoo.models()[1]);

    EXPECT_EQ(bank.materializedIdentities(), 3u)
        << "only touched identities materialize";
    EXPECT_EQ(bank.materializedAncestors(), 2u)
        << "one shared ancestor per touched family";

    // Copy-on-write: same-family siblings differ in a sparse subset
    // and agree everywhere else.
    ASSERT_EQ(w0.layers.size(), w8.layers.size());
    ASSERT_FALSE(w0.layers.empty());
    std::size_t differing = 0, total = 0;
    for (std::size_t l = 0; l < w0.layers.size(); ++l) {
        ASSERT_EQ(w0.layers[l].w.size(), w8.layers[l].w.size());
        for (std::size_t i = 0; i < w0.layers[l].w.size(); ++i) {
            ++total;
            if (w0.layers[l].w[i] != w8.layers[l].w[i])
                ++differing;
        }
    }
    EXPECT_GT(differing, 0u) << "siblings are not byte-identical";
    EXPECT_LT(differing, total / 4)
        << "the delta is sparse — most weights are shared ancestry";

    // Pure in (identity, options): a fresh bank reproduces the exact
    // same weights.
    dz::LazyWeightBank bank2;
    const dz::WeightStore &r0 = bank2.weights(zoo.models()[0]);
    ASSERT_EQ(r0.layers.size(), w0.layers.size());
    for (std::size_t l = 0; l < w0.layers.size(); ++l)
        EXPECT_EQ(r0.layers[l].w, w0.layers[l].w);
}

// ---------------------------------------------------------------------
// O(queue) session sampling.
// ---------------------------------------------------------------------

TEST(ProceduralZoo, SamplerIsDeterministicAndSkewedOnLargeZoo)
{
    dz::ProceduralZooOptions zopts;
    zopts.identities = 4096;
    zopts.families = 32;
    zopts.seed = 5;
    const dz::ModelZoo zoo = dz::buildProceduralZoo(zopts);

    dz::SessionSamplerOptions sopts;
    sopts.sessions = 64;
    sopts.skewPopularity = 0.9;
    const auto a = dz::sampleSessions(zoo, sopts, 42);
    const auto b = dz::sampleSessions(zoo, sopts, 42);
    ASSERT_EQ(a.size(), 64u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].lineage, b[i].lineage);
        EXPECT_EQ(a[i].seed, b[i].seed);
        ASSERT_NE(a[i].lineage, nullptr);
        EXPECT_TRUE(a[i].lineage->isPretrained);
    }

    // Heavy skew over 4096 lineages: the head of the permuted ranking
    // dominates, so the queue touches a tiny slice of the zoo.
    std::map<std::string, std::size_t> counts;
    for (const auto &s : a)
        ++counts[s.lineage->name];
    std::size_t top = 0;
    for (const auto &kv : counts)
        top = std::max(top, kv.second);
    EXPECT_GE(top, 10u)
        << "skew=0.9 should concentrate draws on the head lineage";
    EXPECT_LT(counts.size(), 48u)
        << "64 skewed draws must not scatter across the whole zoo";
}

// ---------------------------------------------------------------------
// Fingerprint index: determinism and recall.
// ---------------------------------------------------------------------

TEST(ZooIndex, TrainsIndexInsteadOfCnnAboveThreshold)
{
    const IndexHarness &h = indexHarness();
    ASSERT_NE(h.level1->index(), nullptr);
    EXPECT_EQ(h.level1->index()->numClasses(), 256u);
    EXPECT_GT(h.trainAccuracy, 0.9)
        << "dialect-unique procedural releases should be near-"
           "perfectly separable from aggregate trace features";
}

TEST(ZooIndex, ShortlistsAreAPureFunctionOfTheQuery)
{
    const IndexHarness &h = indexHarness();
    const df::FingerprintIndex *idx = h.level1->index();
    ASSERT_NE(idx, nullptr);

    const dz::ModelIdentity &m = h.zoo.models()[31];
    const dg::KernelTrace trace =
        dg::TraceGenerator(m.signature).generate(m.arch, 0xfeedULL);
    const std::vector<float> emb = df::traceEmbedding(trace);

    df::IndexLookupStats s1, s2;
    const auto short1 = idx->shortlist(emb, &s1);
    const auto short2 = idx->shortlist(emb, &s2);
    EXPECT_EQ(short1, short2);
    EXPECT_EQ(s1.shortlistClasses, s2.shortlistClasses);
    EXPECT_EQ(s1.bucketProbes, s2.bucketProbes);
    EXPECT_TRUE(std::is_sorted(short1.begin(), short1.end()));
    EXPECT_LT(short1.size(), idx->numClasses())
        << "a shortlist that covers the whole zoo is not sublinear";
    EXPECT_EQ(idx->scores(emb, short1), idx->scores(emb, short1));
}

TEST(ZooIndex, IdentifyBatchBitIdenticalAcrossLanes)
{
    PoolGuard guard;
    IndexHarness &h = indexHarness();
    ASSERT_NE(h.level1->index(), nullptr);

    std::vector<dg::KernelTrace> traces;
    for (std::size_t i = 0; i < 48; ++i) {
        const dz::ModelIdentity &m = h.zoo.models()[i];
        traces.push_back(dg::TraceGenerator(m.signature)
                             .generate(m.arch, 0x9990 + i));
    }

    sched::setThreads(1);
    std::vector<dc::IdentificationResult> serial;
    for (const auto &t : traces)
        serial.push_back(h.level1->identify(t));

    for (std::size_t threads : kThreadCounts) {
        sched::setThreads(threads);
        std::vector<const dg::KernelTrace *> ptrs;
        for (const auto &t : traces)
            ptrs.push_back(&t);
        const auto batch = h.level1->identifyBatch(ptrs);
        ASSERT_EQ(batch.size(), serial.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EXPECT_EQ(batch[i].pretrainedName, serial[i].pretrainedName);
            EXPECT_EQ(batch[i].topProbability, serial[i].topProbability)
                << "probability must match bit for bit";
            EXPECT_EQ(batch[i].candidates, serial[i].candidates);
        }
    }
}

TEST(ZooIndex, RecallWithinOnePointOfExhaustiveScoring)
{
    PoolGuard guard;
    IndexHarness &h = indexHarness();
    const df::FingerprintIndex *idx = h.level1->index();
    ASSERT_NE(idx, nullptr);
    sched::setThreads(1);

    // Fresh (unseen-seed) victim per lineage; class label == identity
    // index in an all-pretrained procedural zoo.
    const std::vector<std::size_t> all = idx->allClasses();
    std::size_t correct_indexed = 0, correct_exhaustive = 0;
    const std::size_t n = h.zoo.pretrainedCount();
    for (std::size_t c = 0; c < n; ++c) {
        const dz::ModelIdentity &m = h.zoo.models()[c];
        const dg::KernelTrace trace =
            dg::TraceGenerator(m.signature).generate(m.arch, 0x777 + c);
        const std::vector<float> emb = df::traceEmbedding(trace);

        if (idx->classify(emb) == c)
            ++correct_indexed;

        // Exhaustive baseline: the same re-rank applied to every
        // class instead of the shortlist.
        const std::vector<double> probs = idx->scores(emb, all);
        std::size_t best = 0;
        for (std::size_t k = 1; k < probs.size(); ++k) {
            if (probs[k] > probs[best])
                best = k;
        }
        if (best == c)
            ++correct_exhaustive;
    }
    const double acc_indexed = static_cast<double>(correct_indexed) /
                               static_cast<double>(n);
    const double acc_exhaustive =
        static_cast<double>(correct_exhaustive) / static_cast<double>(n);
    EXPECT_GT(acc_exhaustive, 0.8);
    EXPECT_GE(acc_indexed, acc_exhaustive - 0.01)
        << "the shortlist must not cost more than 1pt of accuracy "
           "against exhaustive matching";
}

// ---------------------------------------------------------------------
// Fallback below the zoo-size threshold.
// ---------------------------------------------------------------------

TEST(ZooIndex, SmallPoolFallsBackToExhaustiveCnnPath)
{
    PoolGuard guard;
    sched::setThreads(1);
    const dz::ModelZoo zoo = dz::ModelZoo::buildDefault(51, 4, 0);

    dc::DecepticonOptions base;
    base.datasetOptions.imagesPerModel = 3;
    base.datasetOptions.resolution = 32;
    base.cnnOptions.epochs = 10;
    base.seed = 2;
    dc::DecepticonOptions disabled = base;
    disabled.indexZooThreshold = 0; // indexed path off entirely

    dc::Decepticon with_threshold(base);
    dc::Decepticon without_index(disabled);
    const double acc_a = with_threshold.trainExtractor(zoo);
    const double acc_b = without_index.trainExtractor(zoo);

    // 4 lineages < threshold 256: both configurations must train the
    // exhaustive CNN path and agree bit for bit.
    EXPECT_EQ(with_threshold.index(), nullptr);
    EXPECT_EQ(without_index.index(), nullptr);
    EXPECT_EQ(acc_a, acc_b);

    for (const auto *m : zoo.pretrained()) {
        const dg::KernelTrace trace =
            dg::TraceGenerator(m->signature)
                .generate(m->arch, m->weightSeed ^ 0x33);
        const auto ra = with_threshold.identify(trace);
        const auto rb = without_index.identify(trace);
        EXPECT_EQ(ra.pretrainedName, rb.pretrainedName);
        EXPECT_EQ(ra.topProbability, rb.topProbability);
        EXPECT_EQ(ra.candidates, rb.candidates);
    }
}

// ---------------------------------------------------------------------
// Campaign over the indexed path.
// ---------------------------------------------------------------------

namespace {

dtr::TransformerConfig
tinyConfig()
{
    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 8;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 16;
    cfg.numClasses = 2;
    return cfg;
}

/** A prepared indexed attack over a 48-lineage procedural pool. */
struct CampaignIndexHarness
{
    dz::ModelZoo zoo;
    std::unique_ptr<dc::TwoLevelAttack> attack;
};

CampaignIndexHarness &
campaignIndexHarness()
{
    static CampaignIndexHarness h = [] {
        sched::setThreads(1);
        CampaignIndexHarness x;
        dz::ProceduralZooOptions zopts;
        zopts.identities = 48;
        zopts.families = 12;
        zopts.seed = 21;
        x.zoo = dz::buildProceduralZoo(zopts);
        dc::TwoLevelOptions opts;
        opts.level1.seed = 2;
        opts.level1.indexZooThreshold = 16; // 48 >= 16 -> indexed
        x.attack = std::make_unique<dc::TwoLevelAttack>(opts);
        for (const auto *candidate : x.zoo.pretrained())
            x.attack->addCandidate(
                *candidate,
                std::make_shared<dtr::TransformerClassifier>(
                    tinyConfig(), candidate->weightSeed));
        x.attack->prepare();
        sched::setThreads(0);
        return x;
    }();
    return h;
}

} // anonymous namespace

TEST(ZooIndex, CampaignReportByteIdenticalAcrossLanesOnIndexedPath)
{
    PoolGuard guard;
    CampaignIndexHarness &h = campaignIndexHarness();
    ASSERT_NE(h.attack->level1().index(), nullptr)
        << "48 lineages over threshold 16 must route through the index";

    // Pin wall time: latency attribution is the one legitimately
    // nondeterministic rollup input.
    obs::FakeClock clock;
    obs::setClockForTest(&clock);

    dz::SessionSamplerOptions sopts;
    sopts.sessions = 24;
    sopts.capturesPerVictim = 2;
    sopts.skewPopularity = 0.7;
    auto sessions = dz::sampleSessions(h.zoo, sopts, 77);
    // A few forced blackouts exercise the indexed fused path's honest
    // abstention inside the same byte-identity check.
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        sessions[i].blackout = (i % 8 == 5);
        sessions[i].traceFaultSeverity =
            sessions[i].blackout ? 1.0 : 0.0;
    }

    dcp::CampaignOptions copts;
    copts.batchSize = 8;
    copts.querySetSize = 12;
    copts.victimConfig = tinyConfig();
    copts.seed = 7;
    copts.runLevel2 = false; // identification-scale campaign

    auto run = [&](std::size_t threads) {
        sched::setThreads(threads);
        dcp::CampaignDriver driver(*h.attack, copts);
        return driver.run(sessions).toJson();
    };

    const std::string reference = run(1);
    EXPECT_FALSE(reference.empty());
    for (std::size_t threads : kThreadCounts)
        EXPECT_EQ(run(threads), reference)
            << "indexed campaign report differs at " << threads
            << " lanes";

    obs::setClockForTest(nullptr);
}
