/**
 * @file
 * Differential and determinism tests for the optimized kernel layer
 * (DESIGN.md §10). The optimized GEMM/softmax paths are checked
 * against the naive reference loops over a sweep of adversarial
 * shapes (1x1, primes, k > n, empty operands, strided views, fused
 * epilogues) within a scaled 1e-5 relative tolerance, and checked
 * against themselves for BIT-identical output at 1 / 2 / 8 scheduler
 * lanes (§9). The nn layers' naive/optimized branches are compared
 * end to end, and the activation-epoch guard (backward after
 * recycleActivations) is exercised as a death test.
 */

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "nn/conv.hh"
#include "nn/linear.hh"
#include "sched/sched.hh"
#include "tensor/kernels/arena.hh"
#include "tensor/kernels/kernels.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace dt = decepticon::tensor;
namespace dk = decepticon::tensor::kernels;
namespace dn = decepticon::nn;
namespace du = decepticon::util;
namespace sched = decepticon::sched;

namespace {

/** Force a kernel mode for one scope, restoring the previous one. */
class NaiveGuard
{
  public:
    explicit NaiveGuard(bool naive) : prev_(dk::naiveEnabled())
    {
        dk::setNaive(naive);
    }
    ~NaiveGuard() { dk::setNaive(prev_); }

  private:
    bool prev_;
};

/** |a-b| <= tol * max(1, max|b|), the scaled agreement criterion. */
void
expectClose(const std::vector<float> &a, const std::vector<float> &b,
            float tol, const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    float maxabs = 1.0f;
    for (float v : b)
        maxabs = std::max(maxabs, std::fabs(v));
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_NEAR(a[i], b[i], tol * maxabs)
            << what << " at flat index " << i;
    }
}

struct GemmCase
{
    std::size_t n, m, k;
};

/** Odd shapes: unit, primes, k > n, empty batch, micro-tile edges. */
const GemmCase kShapes[] = {
    {1, 1, 1},   {1, 1, 7},   {7, 1, 1},    {1, 13, 1},
    {2, 3, 5},   {7, 11, 13}, {5, 64, 311}, {6, 16, 8},
    {12, 32, 6}, {31, 47, 53}, {72, 17, 96}, {97, 101, 89},
    {0, 8, 8},   {8, 0, 8},   {8, 8, 0},    {130, 20, 24},
};

dk::GemmCall
makeCall(const GemmCase &c, const float *a, const float *b, float *out)
{
    dk::GemmCall call;
    call.n = c.n;
    call.m = c.m;
    call.k = c.k;
    call.a = a;
    call.b = b;
    call.c = out;
    return call;
}

void
fillRandom(std::vector<float> &v, du::Rng &rng, float bound = 1.0f)
{
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-bound, bound));
}

TEST(KernelsGemm, DifferentialSweepAllVariants)
{
    du::Rng rng(11);
    for (const auto &c : kShapes) {
        for (dk::Trans t :
             {dk::Trans::NN, dk::Trans::NT, dk::Trans::TN}) {
            std::vector<float> a(std::max<std::size_t>(1, c.n * c.k));
            std::vector<float> b(std::max<std::size_t>(1, c.k * c.m));
            fillRandom(a, rng);
            fillRandom(b, rng);
            std::vector<float> opt(std::max<std::size_t>(1, c.n * c.m),
                                   -7.0f);
            std::vector<float> ref = opt;
            dk::gemm(t, makeCall(c, a.data(), b.data(), opt.data()));
            dk::gemmNaive(t,
                          makeCall(c, a.data(), b.data(), ref.data()));
            expectClose(opt, ref, 1e-5f,
                        "gemm n=" + std::to_string(c.n) +
                            " m=" + std::to_string(c.m) +
                            " k=" + std::to_string(c.k) + " t=" +
                            std::to_string(static_cast<int>(t)));
        }
    }
}

TEST(KernelsGemm, DifferentialFusedEpilogues)
{
    du::Rng rng(12);
    const GemmCase c{37, 29, 41};
    std::vector<float> a(c.n * c.k), b(c.k * c.m);
    std::vector<float> colBias(c.m), rowBias(c.n);
    fillRandom(a, rng);
    fillRandom(b, rng);
    fillRandom(colBias, rng);
    fillRandom(rowBias, rng);

    for (dk::Act act : {dk::Act::None, dk::Act::Relu, dk::Act::Gelu}) {
        std::vector<float> opt(c.n * c.m), ref(c.n * c.m);
        std::vector<float> optPre(c.n * c.m, -1.0f);
        std::vector<float> refPre(c.n * c.m, -2.0f);
        dk::GemmCall call = makeCall(c, a.data(), b.data(), opt.data());
        call.colBias = colBias.data();
        call.rowBias = rowBias.data();
        call.act = act;
        call.preact = optPre.data();
        dk::gemm(dk::Trans::NN, call);
        call.c = ref.data();
        call.preact = refPre.data();
        dk::gemmNaive(dk::Trans::NN, call);
        const std::string what =
            "epilogue act=" + std::to_string(static_cast<int>(act));
        expectClose(opt, ref, 1e-5f, what);
        expectClose(optPre, refPre, 1e-5f, what + " preact");
    }

    // Accumulation (the dW += dy^T x shape) without bias/activation.
    std::vector<float> opt(c.n * c.m), ref(c.n * c.m);
    fillRandom(opt, rng);
    ref = opt;
    dk::GemmCall acc = makeCall(c, a.data(), b.data(), opt.data());
    acc.accumulate = true;
    dk::gemm(dk::Trans::NN, acc);
    acc.c = ref.data();
    dk::gemmNaive(dk::Trans::NN, acc);
    expectClose(opt, ref, 1e-5f, "accumulate");
}

TEST(KernelsGemm, DifferentialStridedViews)
{
    // Head-slice pattern: operands are column blocks of wider
    // matrices, the result lands in a column block of a wider output.
    du::Rng rng(13);
    const std::size_t t = 33, d = 40, off = 8, dh = 10;
    std::vector<float> q(t * d), k(t * d);
    fillRandom(q, rng);
    fillRandom(k, rng);
    std::vector<float> opt(t * t), ref(t * t);
    dk::GemmCall call;
    call.n = t;
    call.m = t;
    call.k = dh;
    call.a = q.data() + off;
    call.lda = d;
    call.b = k.data() + off;
    call.ldb = d;
    call.c = opt.data();
    dk::gemm(dk::Trans::NT, call);
    call.c = ref.data();
    dk::gemmNaive(dk::Trans::NT, call);
    expectClose(opt, ref, 1e-5f, "strided NT");

    // Strided C: write a (t, dh) product into columns of (t, d).
    std::vector<float> optWide(t * d, 0.5f), refWide(t * d, 0.5f);
    dk::GemmCall ctx;
    ctx.n = t;
    ctx.m = dh;
    ctx.k = t;
    ctx.a = opt.data();
    ctx.b = k.data() + off;
    ctx.ldb = d;
    ctx.c = optWide.data() + off;
    ctx.ldc = d;
    dk::gemm(dk::Trans::NN, ctx);
    ctx.c = refWide.data() + off;
    dk::gemmNaive(dk::Trans::NN, ctx);
    expectClose(optWide, refWide, 1e-5f, "strided C");
    // Untouched columns keep their fill value exactly.
    EXPECT_EQ(optWide[0], 0.5f);
    EXPECT_EQ(optWide[off + dh], 0.5f);
}

TEST(KernelsGemm, BitIdenticalAcrossLaneCounts)
{
    // Large enough to cross the parallel threshold: the summation
    // order must still be a pure function of the shape (§9).
    const GemmCase c{256, 96, 64};
    du::Rng rng(17);
    std::vector<float> a(c.n * c.k), b(c.k * c.m);
    fillRandom(a, rng);
    fillRandom(b, rng);

    std::vector<std::vector<float>> results;
    for (std::size_t lanes : {1u, 2u, 8u}) {
        sched::setThreads(lanes);
        std::vector<float> out(c.n * c.m);
        dk::gemm(dk::Trans::NN,
                 makeCall(c, a.data(), b.data(), out.data()));
        results.push_back(std::move(out));
    }
    sched::setThreads(0);
    for (std::size_t i = 1; i < results.size(); ++i) {
        ASSERT_EQ(0, std::memcmp(results[0].data(), results[i].data(),
                                 results[0].size() * sizeof(float)))
            << "lane set " << i << " diverged";
    }
}

TEST(KernelsSoftmax, MatchesNaiveAndZerosMaskedEntries)
{
    du::Rng rng(19);
    for (std::size_t cols : {1u, 2u, 7u, 8u, 9u, 31u, 64u}) {
        const std::size_t rows = 5;
        dt::Tensor x({rows, cols});
        x.fillGaussian(rng, 3.0f);
        // Causal-style mask on the last row.
        for (std::size_t j = cols / 2; j < cols; ++j)
            x.at(rows - 1, j) = -1e30f;

        dt::Tensor fast({rows, cols});
        dk::softmaxRowsFast(x.data(), fast.data(), rows, cols);

        dt::Tensor ref;
        {
            NaiveGuard guard(true);
            ref = dt::softmaxRows(x);
        }
        for (std::size_t i = 0; i < fast.size(); ++i)
            ASSERT_NEAR(fast[i], ref[i], 1e-5f) << "cols=" << cols;
        // Masked probabilities are exactly zero, like libm underflow.
        for (std::size_t j = cols / 2; j < cols; ++j) {
            if (cols / 2 > 0) {
                EXPECT_EQ(fast.at(rows - 1, j), 0.0f);
            }
        }
    }
}

TEST(KernelsLinear, NaiveAndOptimizedAgree)
{
    du::Rng rng(23);
    for (dk::Act act : {dk::Act::None, dk::Act::Relu, dk::Act::Gelu}) {
        du::Rng rngOpt(23), rngRef(23); // identical init
        dn::Linear optLin("l", 13, 7, rngOpt);
        optLin.setActivation(act);
        dn::Linear refLin("l", 13, 7, rngRef);
        refLin.setActivation(act);

        dt::Tensor x({5, 13});
        x.fillGaussian(rng, 1.0f);
        dt::Tensor dy({5, 7});
        dy.fillGaussian(rng, 1.0f);

        dt::Tensor yOpt, dxOpt, yRef, dxRef;
        {
            NaiveGuard guard(false);
            yOpt = optLin.forward(x);
            dxOpt = optLin.backward(dy);
        }
        {
            NaiveGuard guard(true);
            yRef = refLin.forward(x);
            dxRef = refLin.backward(dy);
        }
        for (std::size_t i = 0; i < yOpt.size(); ++i)
            ASSERT_NEAR(yOpt[i], yRef[i], 1e-5f);
        for (std::size_t i = 0; i < dxOpt.size(); ++i)
            ASSERT_NEAR(dxOpt[i], dxRef[i], 1e-5f);
        for (std::size_t i = 0; i < optLin.weight.grad.size(); ++i)
            ASSERT_NEAR(optLin.weight.grad[i], refLin.weight.grad[i],
                        1e-4f);
        for (std::size_t i = 0; i < optLin.bias.grad.size(); ++i)
            ASSERT_NEAR(optLin.bias.grad[i], refLin.bias.grad[i],
                        1e-4f);
    }
}

TEST(KernelsConv, Im2colAndDirectAgree)
{
    du::Rng rng(29);
    for (dk::Act act : {dk::Act::None, dk::Act::Relu}) {
        du::Rng rngOpt(29), rngRef(29); // identical init
        dn::Conv2d optConv("c", 3, 4, 3, rngOpt);
        optConv.setActivation(act);
        dn::Conv2d refConv("c", 3, 4, 3, rngRef);
        refConv.setActivation(act);

        dt::Tensor x({2, 3, 9, 8});
        x.fillGaussian(rng, 1.0f);
        dt::Tensor dy({2, 4, 7, 6});
        dy.fillGaussian(rng, 1.0f);

        dt::Tensor yOpt, dxOpt, yRef, dxRef;
        {
            NaiveGuard guard(false);
            yOpt = optConv.forward(x);
            dxOpt = optConv.backward(dy);
        }
        {
            NaiveGuard guard(true);
            yRef = refConv.forward(x);
            dxRef = refConv.backward(dy);
        }
        ASSERT_EQ(yOpt.shape(), yRef.shape());
        for (std::size_t i = 0; i < yOpt.size(); ++i)
            ASSERT_NEAR(yOpt[i], yRef[i], 1e-5f);
        for (std::size_t i = 0; i < dxOpt.size(); ++i)
            ASSERT_NEAR(dxOpt[i], dxRef[i], 1e-4f);
        for (std::size_t i = 0; i < optConv.weight.grad.size(); ++i)
            ASSERT_NEAR(optConv.weight.grad[i], refConv.weight.grad[i],
                        1e-4f);
        for (std::size_t i = 0; i < optConv.bias.grad.size(); ++i)
            ASSERT_NEAR(optConv.bias.grad[i], refConv.bias.grad[i],
                        1e-4f);
    }
}

TEST(KernelsArena, FrameReclaimsAndPointersAreStable)
{
    dk::ScratchArena arena;
    float *first = nullptr;
    {
        dk::ScratchArena::Frame frame(arena);
        first = arena.alloc(100);
        first[0] = 1.0f;
        // Force growth past one slab; the first buffer must not move.
        float *big = arena.alloc((1u << 20) + 5);
        big[0] = 2.0f;
        EXPECT_EQ(first[0], 1.0f);
    }
    {
        dk::ScratchArena::Frame frame(arena);
        // After the frame popped, the same storage is handed out again.
        float *again = arena.alloc(100);
        EXPECT_EQ(again, first);
        // alloc() zeroes the block.
        EXPECT_EQ(again[0], 0.0f);
    }
}

TEST(KernelsArena, ActivationCacheEpochSemantics)
{
    dk::ActivationCache cache;
    EXPECT_FALSE(cache.valid());
    const float v[3] = {1.0f, 2.0f, 3.0f};
    cache.store(v, 3);
    EXPECT_TRUE(cache.valid());
    EXPECT_EQ(cache.size(), 3u);
    dk::recycleActivations();
    EXPECT_FALSE(cache.valid());
    cache.store(v, 2);
    EXPECT_TRUE(cache.valid());
    cache.invalidate();
    EXPECT_FALSE(cache.valid());
}

using KernelsDeathTest = ::testing::Test;

TEST(KernelsDeathTest, LinearBackwardAfterRecycleAsserts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    du::Rng rng(31);
    dn::Linear lin("l", 4, 3, rng);
    dt::Tensor x({2, 4});
    x.fillGaussian(rng, 1.0f);
    dt::Tensor dy({2, 3}, 0.1f);
    lin.forward(x);
    dk::recycleActivations();
    EXPECT_DEATH(lin.backward(dy), "recycleActivations");
}

TEST(KernelsDeathTest, ConvBackwardAfterRecycleAsserts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    NaiveGuard guard(false); // epoch guard lives on the im2col path
    du::Rng rng(37);
    dn::Conv2d conv("c", 1, 2, 3, rng);
    dt::Tensor x({1, 1, 6, 6});
    x.fillGaussian(rng, 1.0f);
    dt::Tensor dy({1, 2, 4, 4}, 0.1f);
    conv.forward(x);
    dk::recycleActivations();
    EXPECT_DEATH(conv.backward(dy), "recycleActivations");
}

} // namespace
