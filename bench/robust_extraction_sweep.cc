/**
 * @file
 * Unreliable-channel sweep: how the attack degrades — and how the
 * resilience machinery recovers — as both side channels get noisier.
 *
 * Part A sweeps trace-capture faults (dropped/duplicated records,
 * truncated tails) and compares level-1 identification from a single
 * corrupted capture against identifyResilient() over R repaired
 * captures with the CNN→kNN→sequence-predictor degradation chain.
 *
 * Part B sweeps bit-probe faults (transient flips + failed attempts)
 * on a partially hammerable DRAM (hammerableRowFraction = 0.85) and
 * clones a real fine-tuned victim with the raw channel vs the
 * retrying/voting/falling-back prober, reporting clone error and the
 * hammer-round overhead the resilience costs. It also replays one
 * faulty run to verify fault injection is bit-for-bit deterministic.
 *
 * Part C sweeps which evidence channels survive (timestamp / power /
 * thermal / profiler availability subsets) crossed with side-channel
 * fault severity, and reports fused identification accuracy, the
 * explicit insufficient-evidence fraction, and mean confidence from
 * identifyFused()'s confidence-weighted late fusion.
 *
 * Shape checks (exit non-zero on failure):
 *  - identical FaultSpec seeds produce identical ExtractionStats;
 *  - at drop rate 2%, resilient identification accuracy stays >= 0.6;
 *  - at probe flip rate 1e-3, the resilient clone's error stays
 *    within 2x of the fault-free clone's;
 *  - at flip rate 1e-2, disabling resilience measurably increases
 *    clone error;
 *  - with the timestamp channel jammed and the other three healthy,
 *    fused accuracy stays >= 0.7;
 *  - all-channels-healthy accuracy never drops below timestamp-only;
 *  - total channel blackout always reports insufficient evidence.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench/workloads.hh"
#include "core/decepticon.hh"
#include "extraction/cloner.hh"
#include "fault/channel.hh"
#include "fault/fault.hh"
#include "gpusim/emission.hh"
#include "gpusim/trace_generator.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "sched/sched.hh"
#include "util/table.hh"

using namespace decepticon;

namespace {

struct CloneOutcome
{
    double error = 0.0; ///< mean |clone - victim| per parameter
    extraction::ExtractionStats stats;
    extraction::ProbeStats probe;
    fault::FaultCounters faults;
};

bool
sameStats(const extraction::ExtractionStats &a,
          const extraction::ExtractionStats &b)
{
    return a.bitsChecked == b.bitsChecked &&
           a.weightsSkipped == b.weightsSkipped &&
           a.baselineFallbackWeights == b.baselineFallbackWeights &&
           a.probeRetries == b.probeRetries &&
           a.voteReads == b.voteReads &&
           a.probeFailures == b.probeFailures &&
           a.fallbackBits == b.fallbackBits &&
           a.exhaustedBits == b.exhaustedBits;
}

} // anonymous namespace

int
main()
{
    std::cout << "=== Robust extraction sweep (unreliable channels) "
                 "===\n";

    // Every sweep point lands in this registry (via the stat structs'
    // toMetrics) and is dumped as BENCH_robust_extraction_sweep.json.
    obs::MetricsRegistry bench_reg;

    // Arm the global registry for the whole sweep so the pipeline's
    // StageTimers accumulate per-stage latency histograms; the end of
    // main() folds their quantiles into bench_reg as
    // sweep.stage.<stage>.p50_micros / .p99_micros gauges.
    {
        obs::ObsConfig ocfg;
        ocfg.metricsEnabled = true;
        obs::configure(ocfg);
    }
    const auto point_label = [](const char *part, double knob,
                                const char *suffix) {
        std::ostringstream oss;
        oss << "sweep." << part << "." << knob;
        if (suffix[0] != '\0')
            oss << "." << suffix;
        return oss.str();
    };

    // ---- Part A: identification under trace-capture faults ----
    zoo::ModelZoo pool = zoo::ModelZoo::buildDefault(11, 6, 12);
    core::DecepticonOptions dopts;
    dopts.datasetOptions.imagesPerModel = 4;
    dopts.datasetOptions.resolution = 32;
    dopts.cnnOptions.epochs = 30;
    dopts.seed = 3;
    core::Decepticon pipeline(dopts);
    const double clean_acc = pipeline.trainExtractor(pool);

    const std::size_t kCaptures = 5;
    util::Table ta({"drop rate", "1-capture acc", "resilient acc",
                    "knn fallbacks", "seq fallbacks"});
    double resilient_acc_low = 0.0;
    for (double drop : {0.0, 0.02, 0.10}) {
        fault::FaultSpec tspec;
        tspec.recordDropRate = drop;
        tspec.recordDuplicateRate = drop / 2.0;
        tspec.truncateProbability = drop > 0.0 ? 0.1 : 0.0;
        tspec.seed = 515;
        fault::FaultInjector tinj(tspec);

        std::size_t single_ok = 0, multi_ok = 0, total = 0;
        std::size_t knn_falls = 0, seq_falls = 0;
        for (const auto *victim : pool.finetuned()) {
            const gpusim::TraceGenerator gen(victim->signature);
            const auto clean =
                gen.generate(victim->arch, 0xabcdefULL + total);
            std::vector<gpusim::KernelTrace> captures;
            for (std::size_t r = 0; r < kCaptures; ++r)
                captures.push_back(tinj.corruptTrace(
                    clean, total * kCaptures + r));

            const auto one = pipeline.identify(captures.front());
            single_ok +=
                one.pretrainedName == victim->pretrainedName ? 1 : 0;
            const auto multi = pipeline.identifyResilient(captures);
            multi_ok +=
                multi.pretrainedName == victim->pretrainedName ? 1 : 0;
            knn_falls += multi.usedKnnFallback ? 1 : 0;
            seq_falls += multi.usedSeqFallback ? 1 : 0;
            ++total;
        }
        const double single_acc = static_cast<double>(single_ok) /
                                  static_cast<double>(total);
        const double multi_acc = static_cast<double>(multi_ok) /
                                 static_cast<double>(total);
        if (drop == 0.02)
            resilient_acc_low = multi_acc;
        ta.row()
            .cell(drop, 2)
            .cell(single_acc, 3)
            .cell(multi_acc, 3)
            .cell(knn_falls)
            .cell(seq_falls);
        const std::string label = point_label("drop", drop, "");
        bench_reg.setGauge(label + ".single_capture_acc", single_acc);
        bench_reg.setGauge(label + ".resilient_acc", multi_acc);
        bench_reg.setGauge(label + ".knn_fallbacks",
                           static_cast<double>(knn_falls));
        bench_reg.setGauge(label + ".seq_fallbacks",
                           static_cast<double>(seq_falls));
    }
    util::printBanner(std::cout,
                      "Level 1: identification vs trace-capture "
                      "faults (R=5 captures)");
    ta.printAscii(std::cout);
    std::cout << "clean (fault-free) extractor test accuracy: "
              << clean_acc << "\n";

    // ---- Part B: cloning under bit-probe faults ----
    const auto cfg = bench::benchConfig(4, 2);
    auto pretrained = bench::pretrainBackbone(cfg, 77);
    transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen, 771, 4.0);
    auto victim = bench::fineTuneFrom(*pretrained, task,
                                      task.sample(160, 2), 5,
                                      bench::fineTuneOptions());
    const auto query = task.sample(40, 4).examples;

    // The victim is passed by reference because extraction exercises
    // its (non-const) forward caches; parallel sweep points therefore
    // get their own deep copy below.
    auto run_clone = [&](transformer::TransformerClassifier &vic,
                         double flip, bool resilient) {
        extraction::ClonerOptions copts;
        copts.policy.maxBitsPerWeight = 4;
        copts.policy.baseDist = 0.015;
        copts.policy.significance = 0.0001;
        copts.agreementTarget = 1.1; // extract everything
        extraction::DramGeometry geom;
        geom.hammerableRowFraction = 0.85;
        copts.dramGeometry = geom;
        copts.dramSeed = 9;
        if (flip > 0.0) {
            fault::FaultSpec spec;
            spec.probeFlipRate = flip;
            spec.transientFailureRate = flip;
            spec.seed = 4242;
            copts.faultSpec = spec;
        }
        if (resilient)
            copts.resilience = extraction::ResilienceOptions{};
        auto result = extraction::ModelCloner::extract(
            vic, *pretrained, query, copts);
        CloneOutcome out;
        out.error = bench::meanAbsParamDiff(vic, *result.clone);
        out.stats = result.extractionStats;
        out.probe = result.probeStats;
        out.faults = result.faultCounters;
        return out;
    };

    const CloneOutcome clean_run = run_clone(*victim, 0.0, false);

    // The four (flip rate, resilience) sweep points are independent
    // runs, so they double as the driver-level determinism check: run
    // them serially on a 1-lane pool, re-run them in parallel with a
    // per-point victim copy, and require identical outcomes.
    struct Combo
    {
        double flip;
        bool resilient;
    };
    const std::vector<Combo> combos = {
        {1e-3, false}, {1e-3, true}, {1e-2, false}, {1e-2, true}};

    sched::setThreads(1);
    std::vector<CloneOutcome> serial_runs;
    const auto serial_t0 = std::chrono::steady_clock::now();
    for (const Combo &c : combos)
        serial_runs.push_back(run_clone(*victim, c.flip, c.resilient));
    const double serial_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      serial_t0)
            .count();

    // At least 4 lanes so the equivalence check crosses real worker
    // threads even on a single-core host (where the env default is 1).
    sched::setThreads(std::max<std::size_t>(4, sched::hardwareThreads()));
    std::vector<CloneOutcome> runs(combos.size());
    const auto par_t0 = std::chrono::steady_clock::now();
    sched::parallelFor(combos.size(), 1, [&](std::size_t i) {
        transformer::TransformerClassifier victim_copy(*victim);
        runs[i] =
            run_clone(victim_copy, combos[i].flip, combos[i].resilient);
    });
    const double parallel_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      par_t0)
            .count();
    const std::size_t sweep_lanes = sched::configuredThreads();
    sched::setThreads(0); // back to the environment default

    bool sweep_par_ok = true;
    for (std::size_t i = 0; i < combos.size(); ++i)
        sweep_par_ok = sweep_par_ok &&
                       sameStats(runs[i].stats, serial_runs[i].stats) &&
                       runs[i].error == serial_runs[i].error &&
                       runs[i].probe.hammerRounds ==
                           serial_runs[i].probe.hammerRounds &&
                       runs[i].faults.bitFlips ==
                           serial_runs[i].faults.bitFlips &&
                       runs[i].faults.probeFailures ==
                           serial_runs[i].faults.probeFailures;

    util::Table tb({"flip rate", "resilience", "clone error",
                    "error vs clean", "hammer rounds", "rounds vs clean",
                    "fallback bits"});
    double err_res_low = 0.0, err_res_high = 0.0, err_raw_high = 0.0;
    for (std::size_t i = 0; i < combos.size(); ++i) {
        const double flip = combos[i].flip;
        const bool resilient = combos[i].resilient;
        const CloneOutcome &out = runs[i];
        if (resilient && flip == 1e-3)
            err_res_low = out.error;
        if (resilient && flip == 1e-2)
            err_res_high = out.error;
        if (!resilient && flip == 1e-2)
            err_raw_high = out.error;
        const std::string label =
            point_label("flip", flip, resilient ? "res_on" : "res_off");
        out.stats.toMetrics(bench_reg, label + ".extract");
        out.probe.toMetrics(bench_reg, label + ".probe");
        bench_reg.setGauge(label + ".clone_error", out.error);
        bench_reg.setGauge(label + ".error_vs_clean",
                           out.error / clean_run.error);
        tb.row()
            .cell(flip, 4)
            .cell(resilient ? "on" : "off")
            .cell(out.error, 6)
            .cell(out.error / clean_run.error, 2)
            .cell(out.probe.hammerRounds)
            .cell(static_cast<double>(out.probe.hammerRounds) /
                      static_cast<double>(clean_run.probe.hammerRounds),
                  2)
            .cell(out.stats.fallbackBits);
    }
    util::printBanner(std::cout,
                      "Level 2: clone error vs probe-fault rate "
                      "(hammerable rows = 0.85)");
    tb.printAscii(std::cout);
    std::cout << "fault-free clone error: " << clean_run.error << "\n";

    std::cout << "parallel sweep == serial sweep: "
              << (sweep_par_ok ? "ok" : "FAIL") << " (serial "
              << serial_seconds << " s, parallel " << parallel_seconds
              << " s on " << sweep_lanes << " lanes)\n";

    // ---- Part C: multi-modal fusion under channel blackouts ----
    // Sweep which evidence channels survive (timestamp / power /
    // thermal / profiler) crossed with side-channel fault severity,
    // and measure fused identification accuracy, the explicit
    // insufficient-evidence fraction, and mean decision confidence.
    struct ChannelConfig
    {
        const char *name;
        bool ts, power, thermal, profiler;
    };
    const ChannelConfig cconfigs[] = {
        {"all", true, true, true, true},
        {"ts_only", true, false, false, false},
        {"no_ts", false, true, true, true},
        {"power_only", false, true, false, false},
        {"profiler_only", false, false, false, true},
        {"none", false, false, false, false},
    };
    const gpusim::EmissionOptions eopts;
    util::Table tc({"channels", "severity", "fused acc",
                    "insufficient", "mean conf"});
    double acc_all_clean = 0.0, acc_ts_only_clean = 0.0,
           acc_no_ts_clean = 0.0;
    double none_insufficient = 1.0;
    for (const auto &cc : cconfigs) {
        for (double severity : {0.0, 0.4}) {
            fault::MultiChannelFaultSpec mspec;
            mspec.seed = 0xfade;
            const auto side = [&](fault::Channel channel, bool on) {
                auto &s = mspec.at(channel);
                if (!on) {
                    s.jammed = true;
                    return;
                }
                s.dropoutRate = 0.3 * severity;
                s.truncateProbability = 0.5 * severity;
                s.noiseSigma = 0.3 * severity;
                s.quantStep = 0.05 * severity;
            };
            mspec.at(fault::Channel::Timestamp).jammed = !cc.ts;
            side(fault::Channel::Power, cc.power);
            side(fault::Channel::Thermal, cc.thermal);
            side(fault::Channel::Profiler, cc.profiler);
            fault::MultiChannelFaultModel mfaults(mspec);

            // Timestamp captures (when up) carry mild record faults
            // that worsen with severity, like Part A's sweep.
            fault::FaultSpec tspec2;
            tspec2.recordDropRate = 0.02 * (1.0 + severity);
            tspec2.recordDuplicateRate = 0.01;
            tspec2.seed = 616;
            fault::FaultInjector tsinj(tspec2);

            std::size_t ok = 0, insufficient = 0, total = 0;
            double conf_sum = 0.0;
            std::uint64_t cap_seed = 0;
            for (const auto *victim : pool.finetuned()) {
                const gpusim::TraceGenerator gen(victim->signature);
                const auto clean_trace =
                    gen.generate(victim->arch, 0x1ceULL + total);
                const auto power = gpusim::emitPowerTrace(
                    clean_trace, eopts, 0x1ceULL + total);
                const auto thermal = gpusim::emitThermalTrace(
                    clean_trace, eopts, 0x1ceULL + total);
                const auto counters = gpusim::emitProfilerCounters(
                    clean_trace, eopts, 0x1ceULL + total);
                core::MultiChannelCapture mc;
                for (std::size_t r = 0; r < 3; ++r) {
                    ++cap_seed;
                    if (cc.ts)
                        mc.timestampCaptures.push_back(
                            tsinj.corruptTrace(clean_trace, cap_seed));
                    mc.powerCaptures.push_back(mfaults.corrupt(
                        fault::Channel::Power, power, cap_seed));
                    mc.thermalCaptures.push_back(mfaults.corrupt(
                        fault::Channel::Thermal, thermal, cap_seed));
                    mc.profilerCaptures.push_back(mfaults.corrupt(
                        fault::Channel::Profiler, counters, cap_seed));
                }
                const auto res = pipeline.identifyFused(mc);
                if (res.insufficientEvidence)
                    ++insufficient;
                else if (res.pretrainedName == victim->pretrainedName)
                    ++ok;
                conf_sum += res.insufficientEvidence
                                ? 0.0
                                : (res.usedChannelFusion
                                       ? res.fusedConfidence
                                       : res.topProbability);
                ++total;
            }
            const double acc = static_cast<double>(ok) /
                               static_cast<double>(total);
            const double insufficient_frac =
                static_cast<double>(insufficient) /
                static_cast<double>(total);
            const double mean_conf =
                conf_sum / static_cast<double>(total);
            if (severity == 0.0) {
                if (std::string(cc.name) == "all")
                    acc_all_clean = acc;
                if (std::string(cc.name) == "ts_only")
                    acc_ts_only_clean = acc;
                if (std::string(cc.name) == "no_ts")
                    acc_no_ts_clean = acc;
            }
            if (std::string(cc.name) == "none")
                none_insufficient =
                    std::min(none_insufficient, insufficient_frac);
            tc.row()
                .cell(cc.name)
                .cell(severity, 1)
                .cell(acc, 3)
                .cell(insufficient_frac, 3)
                .cell(mean_conf, 3);
            std::ostringstream loss;
            loss << "sweep.fusion." << cc.name << "." << severity;
            bench_reg.setGauge(loss.str() + ".acc", acc);
            bench_reg.setGauge(loss.str() + ".insufficient_frac",
                               insufficient_frac);
            bench_reg.setGauge(loss.str() + ".mean_confidence",
                               mean_conf);
        }
    }
    util::printBanner(std::cout,
                      "Level 1: fused identification vs channel "
                      "availability (R=3 captures)");
    tc.printAscii(std::cout);

    // Determinism: identical FaultSpec seeds must replay identically.
    const CloneOutcome rep_a = run_clone(*victim, 1e-3, true);
    const CloneOutcome rep_b = run_clone(*victim, 1e-3, true);
    const bool det_ok =
        sameStats(rep_a.stats, rep_b.stats) &&
        rep_a.faults.bitFlips == rep_b.faults.bitFlips &&
        rep_a.faults.probeFailures == rep_b.faults.probeFailures &&
        rep_a.probe.hammerRounds == rep_b.probe.hammerRounds &&
        rep_a.error == rep_b.error;
    std::cout << "determinism (same seed -> same stats): "
              << (det_ok ? "ok" : "FAIL") << "\n";

    const bool id_ok = resilient_acc_low >= 0.6;
    const bool error_ok = err_res_low <= 2.0 * clean_run.error;
    const bool degrade_ok = err_raw_high > err_res_high;
    if (!id_ok)
        std::cout << "FAIL: resilient identification collapsed at 2% "
                     "drop rate\n";
    if (!error_ok)
        std::cout << "FAIL: resilient clone error beyond 2x fault-free "
                     "at flip 1e-3\n";
    if (!degrade_ok)
        std::cout << "FAIL: disabling resilience did not degrade the "
                     "clone\n";

    const bool fusion_no_ts_ok = acc_no_ts_clean >= 0.7;
    const bool fusion_healthy_ok = acc_all_clean >= acc_ts_only_clean;
    const bool fusion_blackout_ok = none_insufficient >= 1.0;
    if (!fusion_no_ts_ok)
        std::cout << "FAIL: fused identification below 0.7 with the "
                     "timestamp channel jammed\n";
    if (!fusion_healthy_ok)
        std::cout << "FAIL: all-channels-healthy accuracy fell below "
                     "timestamp-only\n";
    if (!fusion_blackout_ok)
        std::cout << "FAIL: total channel blackout did not report "
                     "insufficient evidence\n";

    if (!sweep_par_ok)
        std::cout << "FAIL: parallel sweep outcomes diverged from the "
                     "serial reference\n";

    bench_reg.setGauge("sweep.partb.serial_seconds", serial_seconds);
    bench_reg.setGauge("sweep.partb.parallel_seconds", parallel_seconds);
    bench_reg.setGauge("sweep.partb.speedup",
                       parallel_seconds > 0.0
                           ? serial_seconds / parallel_seconds
                           : 0.0);
    bench_reg.setGauge("sweep.partb.lanes",
                       static_cast<double>(sweep_lanes));
    bench_reg.setGauge("sweep.clean_clone_error", clean_run.error);
    bench_reg.setGauge("sweep.clean_extractor_acc", clean_acc);
    clean_run.stats.toMetrics(bench_reg, "sweep.clean.extract");
    clean_run.probe.toMetrics(bench_reg, "sweep.clean.probe");

    // Fold the global registry's stage histograms (filled by every
    // identify/extract call above) into the sweep snapshot, then stop
    // collecting. The per-stage p50/p99 table in EXPERIMENTS.md reads
    // from exactly these gauges.
    for (const char *stage : {"probe", "trace_capture", "classify",
                              "fuse", "extract"}) {
        const auto hist = obs::metrics().latency(
            std::string("stage.") + stage + ".micros");
        if (!hist || hist->total() == 0)
            continue;
        const std::string base = std::string("sweep.stage.") + stage;
        bench_reg.setGauge(base + ".p50_micros", hist->quantile(0.50));
        bench_reg.setGauge(base + ".p99_micros", hist->quantile(0.99));
        bench_reg.setGauge(base + ".samples",
                           static_cast<double>(hist->total()));
    }
    obs::configure(obs::ObsConfig{});
    {
        std::ofstream out("BENCH_robust_extraction_sweep.json");
        bench_reg.exportJson(out);
        out << "\n";
    }
    std::cout << "wrote BENCH_robust_extraction_sweep.json\n";
    return det_ok && id_ok && error_ok && degrade_ok &&
                   sweep_par_ok && fusion_no_ts_ok &&
                   fusion_healthy_ok && fusion_blackout_ok
               ? 0
               : 1;
}
