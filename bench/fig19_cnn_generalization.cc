/**
 * @file
 * Figure 19 reproduction (Sec. 7.7, attack generalization): the weight
 * similarity induced by transfer learning is not transformer-specific.
 * A CNN (stand-in for the paper's ResNet-18) is pre-trained on one
 * synthetic image task, then (a) fine-tuned on a second task and
 * (b) trained from scratch on that same second task. Expected shape:
 * the fine-tuned model's per-layer distance to its pre-trained parent
 * is near zero while its distance to the from-scratch twin — trained
 * on the *same* data — is at least ~20x larger.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace decepticon;

namespace {

/** Synthetic image task: class-dependent bright blob + noise. */
fingerprint::FingerprintDataset
blobTask(std::size_t classes, std::size_t per_class, std::size_t res,
         std::uint64_t task_seed, std::uint64_t sample_seed)
{
    util::Rng task_rng(task_seed);
    // Class-specific blob centers.
    std::vector<std::pair<double, double>> centers;
    for (std::size_t c = 0; c < classes; ++c)
        centers.emplace_back(task_rng.uniform(0.2, 0.8),
                             task_rng.uniform(0.2, 0.8));

    util::Rng rng(sample_seed);
    fingerprint::FingerprintDataset ds;
    ds.resolution = res;
    for (std::size_t c = 0; c < classes; ++c)
        ds.classNames.push_back("blob" + std::to_string(c));
    for (std::size_t c = 0; c < classes; ++c) {
        for (std::size_t k = 0; k < per_class; ++k) {
            fingerprint::FingerprintSample s;
            s.label = static_cast<int>(c);
            s.image = tensor::Tensor({res, res});
            const double cx =
                centers[c].first + rng.gaussian(0.0, 0.03);
            const double cy =
                centers[c].second + rng.gaussian(0.0, 0.03);
            for (std::size_t r = 0; r < res; ++r) {
                for (std::size_t q = 0; q < res; ++q) {
                    const double dx =
                        static_cast<double>(q) / res - cx;
                    const double dy =
                        static_cast<double>(r) / res - cy;
                    const double v =
                        std::exp(-(dx * dx + dy * dy) / 0.01) +
                        rng.gaussian(0.0, 0.05);
                    s.image.at(r, q) = static_cast<float>(
                        std::clamp(v, 0.0, 1.0));
                }
            }
            ds.samples.push_back(std::move(s));
        }
    }
    rng.shuffle(ds.samples);
    return ds;
}

/** Copy all parameters of one CNN into another (same topology). */
void
copyParams(fingerprint::FingerprintCnn &dst,
           fingerprint::FingerprintCnn &src)
{
    auto pd = dst.params();
    auto ps = src.params();
    for (std::size_t i = 0; i < pd.size(); ++i)
        pd[i]->value = ps[i]->value;
}

/** Re-initialize the classifier head (last fc) of a CNN. */
void
resetHead(fingerprint::FingerprintCnn &cnn, std::uint64_t seed)
{
    util::Rng rng(seed);
    for (auto *p : cnn.params()) {
        if (p->name == "cnn.fc3.weight")
            p->value.fillXavier(rng, 84, cnn.numClasses());
        else if (p->name == "cnn.fc3.bias")
            p->value.fill(0.0f);
    }
}

/** Per-layer mean |diff| between two same-topology CNNs. */
std::vector<std::pair<std::string, double>>
perLayerDiff(fingerprint::FingerprintCnn &a, fingerprint::FingerprintCnn &b)
{
    std::vector<std::pair<std::string, double>> out;
    auto pa = a.params();
    auto pb = b.params();
    for (std::size_t i = 0; i < pa.size(); ++i) {
        if (pa[i]->name.find(".bias") != std::string::npos)
            continue;
        double s = 0.0;
        for (std::size_t j = 0; j < pa[i]->size(); ++j)
            s += std::fabs(pa[i]->value[j] - pb[i]->value[j]);
        out.emplace_back(pa[i]->name,
                         s / static_cast<double>(pa[i]->size()));
    }
    return out;
}

} // namespace

int
main()
{
    constexpr std::size_t kRes = 32;
    constexpr std::size_t kClasses = 4;

    const auto task_a = blobTask(kClasses, 30, kRes, 1, 100);
    const auto task_b = blobTask(kClasses, 30, kRes, 2, 200);

    // Pre-train on task A.
    fingerprint::FingerprintCnn pre(kRes, kClasses, 19);
    fingerprint::CnnTrainOptions popts;
    popts.epochs = 12;
    pre.train(task_a, popts);

    // Fine-tune a copy on task B (fresh head, small rate, few epochs).
    fingerprint::FingerprintCnn finetuned(kRes, kClasses, 20);
    copyParams(finetuned, pre);
    resetHead(finetuned, 21);
    fingerprint::CnnTrainOptions fopts;
    fopts.epochs = 6;
    fopts.lr = 3e-4f;
    finetuned.train(task_b, fopts);

    // From-scratch twin on the same task-B data.
    fingerprint::FingerprintCnn scratch(kRes, kClasses, 22);
    fingerprint::CnnTrainOptions sopts;
    sopts.epochs = 12;
    scratch.train(task_b, sopts);

    std::cout << "task-B accuracy — fine-tuned: "
              << finetuned.evaluate(task_b)
              << ", from-scratch: " << scratch.evaluate(task_b) << "\n";

    const auto vs_pre = perLayerDiff(finetuned, pre);
    const auto vs_scratch = perLayerDiff(finetuned, scratch);

    util::Table t({"layer", "|diff| vs pre-trained",
                   "|diff| vs from-scratch", "ratio"});
    double worst_ratio = 1e18;
    for (std::size_t i = 0; i < vs_pre.size(); ++i) {
        const double ratio = vs_scratch[i].second / vs_pre[i].second;
        // The task head is fresh in both; exclude from the ratio check.
        if (vs_pre[i].first.find("fc3") == std::string::npos)
            worst_ratio = std::min(worst_ratio, ratio);
        t.row()
            .cell(vs_pre[i].first)
            .cell(vs_pre[i].second, 6)
            .cell(vs_scratch[i].second, 6)
            .cell(ratio, 1);
    }

    util::printBanner(std::cout,
                      "Fig. 19: CNN weight similarity under transfer "
                      "learning (ResNet-18 stand-in)");
    t.printAscii(std::cout);
    std::cout << "\nworst backbone layer ratio: " << worst_ratio
              << "  (paper: fine-tuned >=20x closer to its parent than "
                 "to a same-data scratch model)\n";
    return worst_ratio >= 10.0 ? 0 : 1;
}
