/**
 * @file
 * Classifier-choice ablation: the paper picks a CNN for fingerprint
 * recognition citing its inherent error tolerance (Sec. 5.4.2). This
 * bench puts that rationale to the test against the natural baseline,
 * a blurred k-NN template matcher, on the same images and the same
 * noise sweeps. Honest finding at this simulated scale: both
 * classifiers are accurate and noise-tolerant, and template matching
 * is at least as robust — the CNN's decisive advantages in the
 * paper's setting are scale (1787 large images, 70 classes, no
 * per-query O(train-set) distance scans) rather than raw robustness.
 */

#include <iostream>

#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "fingerprint/knn.hh"
#include "gpusim/noise.hh"
#include "gpusim/trace_generator.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "zoo/zoo.hh"

using namespace decepticon;

namespace {

/** Fresh-trace accuracy of an arbitrary predictor under noise. */
template <typename PredictFn>
double
noisyAccuracy(const zoo::ModelZoo &zoo,
              const std::vector<std::string> &class_names,
              std::size_t resolution, std::size_t noisy_kernels,
              double magnitude_us, std::uint64_t seed,
              PredictFn &&predict)
{
    util::Rng rng(seed);
    std::size_t correct = 0, total = 0;
    for (const auto &model : zoo.models()) {
        int label = -1;
        for (std::size_t c = 0; c < class_names.size(); ++c) {
            if (class_names[c] == model.pretrainedName)
                label = static_cast<int>(c);
        }
        if (label < 0)
            continue;
        auto trace = gpusim::TraceGenerator(model.signature)
                         .generate(model.arch, rng.nextU64());
        if (noisy_kernels > 0) {
            trace = gpusim::applyTimingNoise(trace, noisy_kernels,
                                             magnitude_us,
                                             rng.nextU64());
        }
        const auto img = fingerprint::fingerprintImage(trace, resolution);
        correct += predict(img) == label ? 1 : 0;
        ++total;
    }
    return static_cast<double>(correct) / static_cast<double>(total);
}

} // namespace

int
main()
{
    const auto zoo = zoo::ModelZoo::buildDefault(52, 12, 24);
    fingerprint::DatasetOptions dopts;
    dopts.imagesPerModel = 5;
    dopts.resolution = 32;
    dopts.seed = 4;
    const auto dataset = fingerprint::buildDataset(zoo, dopts);
    const auto [train, test] = dataset.split(0.8, 9);

    fingerprint::FingerprintCnn cnn(32, dataset.numClasses(), 8);
    fingerprint::CnnTrainOptions topts;
    topts.epochs = 35;
    cnn.train(train, topts);

    fingerprint::NearestNeighborClassifier knn(3);
    knn.train(train);

    std::cout << "held-out accuracy — CNN: " << cnn.evaluate(test)
              << ", 3-NN: " << knn.evaluate(test) << "\n";

    util::Table t({"noisy kernels @ 20us", "CNN accuracy",
                   "3-NN accuracy"});
    double cnn_noisy = 0.0, knn_noisy = 0.0;
    for (std::size_t n : {0, 8, 32, 64, 128}) {
        const double a = noisyAccuracy(
            zoo, dataset.classNames, 32, n, 20.0, 300 + n,
            [&](const tensor::Tensor &img) { return cnn.predict(img); });
        const double b = noisyAccuracy(
            zoo, dataset.classNames, 32, n, 20.0, 300 + n,
            [&](const tensor::Tensor &img) { return knn.predict(img); });
        t.row().cell(n).cell(a, 4).cell(b, 4);
        if (n == 64) {
            cnn_noisy = a;
            knn_noisy = b;
        }
    }
    util::printBanner(std::cout,
                      "Classifier ablation: CNN vs k-NN under timing "
                      "noise");
    t.printAscii(std::cout);
    std::cout << "\nat 64 noisy kernels: CNN " << cnn_noisy << " vs 3-NN "
              << knn_noisy
              << "\n(both tolerate noise; the CNN's edge in the paper's "
                 "setting is scalability, not raw robustness)\n";
    return cnn_noisy >= 0.6 && knn_noisy >= 0.6 ? 0 : 1;
}
