/**
 * @file
 * Figure 17 reproduction: can an attacker skip weight extraction by
 * fine-tuning the identified pre-trained model himself? Only with a
 * large share of the victim's private fine-tuning data. We fine-tune
 * the pre-trained backbone on growing fractions of the victim's
 * training set and compare accuracy against the victim. Expected
 * shape: below ~40% of the data the accuracy drop exceeds 5%, making
 * the data-driven shortcut unrealistic and weight extraction
 * necessary.
 */

#include <iostream>

#include "bench/workloads.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    const auto cfg = bench::benchConfig(4);
    auto pre = bench::pretrainBackbone(cfg, 171, 200, 5);

    // The victim's private fine-tuning data. The task is sized so that
    // data volume matters: few-shot fractions underperform clearly.
    transformer::MarkovTask task(cfg.vocab, 3, cfg.maxSeqLen, 1700, 2.0);
    const auto train = task.sample(300, 1);
    const auto dev = task.sample(150, 2);

    auto victim = bench::fineTuneFrom(*pre, task, train, 7,
                                      bench::fineTuneOptions(4));
    const auto victim_eval = transformer::Trainer::evaluate(*victim, dev);
    std::vector<int> victim_preds;
    for (const auto &ex : dev.examples)
        victim_preds.push_back(victim->predict(ex.tokens));

    util::Table t({"data fraction (%)", "accuracy", "drop vs victim",
                   "matched preds"});
    double acc_at_10 = 0.0, acc_at_100 = 0.0;
    for (double frac : {0.01, 0.05, 0.10, 0.20, 0.40, 0.70, 1.00}) {
        // The data-driven attacker trains to convergence (he has no
        // reason to stop at the victim's epoch budget).
        auto opts = bench::fineTuneOptions(8);
        opts.dataFraction = frac;
        auto copycat = bench::fineTuneFrom(*pre, task, train, 9, opts);
        const auto eval = transformer::Trainer::evaluate(*copycat, dev);
        const double matched = transformer::Trainer::agreement(
            eval.predictions, victim_preds);
        t.row()
            .cell(100.0 * frac, 0)
            .cell(eval.accuracy, 4)
            .cell(victim_eval.accuracy - eval.accuracy, 4)
            .cell(matched, 4);
        if (frac == 0.10)
            acc_at_10 = eval.accuracy;
        if (frac == 1.00)
            acc_at_100 = eval.accuracy;
    }

    util::printBanner(std::cout,
                      "Fig. 17: cloning by re-fine-tuning with partial "
                      "victim data");
    std::cout << "victim accuracy: " << victim_eval.accuracy << "\n";
    t.printAscii(std::cout);

    std::cout << "\ndrop at 10% data: "
              << victim_eval.accuracy - acc_at_10
              << "; drop at 100% data: "
              << victim_eval.accuracy - acc_at_100
              << "  (paper: >=40% data needed for <5% drop)\n";
    const bool shape_ok =
        victim_eval.accuracy - acc_at_10 > 0.05 &&
        victim_eval.accuracy - acc_at_100 < 0.07;
    return shape_ok ? 0 : 1;
}
