/**
 * @file
 * Countermeasure ablation (paper Sec. 8 "Counter Measures"): the model
 * owner randomizes GPU kernel/library selection at run time so the
 * execution schedule stops being a stable fingerprint. This bench
 * deploys that defense in the simulator at increasing strengths and
 * measures (a) how far the CNN extractor's identification accuracy
 * falls — the attacker profiles the *defended* candidates too, so his
 * training images are equally scrambled — and (b) the runtime
 * overhead the defense costs, since randomly selected implementations
 * are not the tuned ones.
 */

#include <iostream>

#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "gpusim/trace_generator.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "zoo/zoo.hh"

using namespace decepticon;

namespace {

/** Build a defended fingerprint dataset at the given strength. */
fingerprint::FingerprintDataset
buildDefendedDataset(const zoo::ModelZoo &zoo, double strength,
                     std::size_t images_per_model, std::size_t resolution,
                     std::uint64_t seed)
{
    fingerprint::FingerprintDataset ds;
    ds.resolution = resolution;
    ds.classNames = zoo.lineageNames();

    util::Rng rng(seed);
    for (const auto &model : zoo.models()) {
        int label = -1;
        for (std::size_t c = 0; c < ds.classNames.size(); ++c) {
            if (ds.classNames[c] == model.pretrainedName)
                label = static_cast<int>(c);
        }
        if (label < 0)
            continue;
        const gpusim::TraceGenerator gen(model.signature);
        for (std::size_t k = 0; k < images_per_model; ++k) {
            fingerprint::FingerprintSample s;
            s.label = label;
            s.modelName = model.name;
            const auto trace = gen.generateDefended(
                model.arch, rng.nextU64(), strength);
            s.image = fingerprint::fingerprintImage(trace, resolution);
            ds.samples.push_back(std::move(s));
        }
    }
    return ds;
}

} // namespace

int
main()
{
    const auto zoo = zoo::ModelZoo::buildDefault(31, 8, 16);

    // Undefended runtime baseline for the overhead column.
    double base_time = 0.0;
    std::size_t base_count = 0;
    for (const auto *m : zoo.pretrained()) {
        base_time += gpusim::TraceGenerator(m->signature)
                         .generate(m->arch, 1)
                         .totalTime();
        ++base_count;
    }
    base_time /= static_cast<double>(base_count);

    util::Table t({"defense strength", "extractor accuracy",
                   "runtime overhead (%)"});
    double acc_clean = 0.0, acc_full = 0.0;
    for (double strength : {0.0, 0.25, 0.5, 1.0}) {
        const auto ds = buildDefendedDataset(zoo, strength, 5, 32,
                                             100 + static_cast<int>(
                                                       strength * 10));
        const auto [train, test] = ds.split(0.8, 7);
        fingerprint::FingerprintCnn cnn(32, ds.numClasses(),
                                        41 + static_cast<int>(
                                                 strength * 4));
        fingerprint::CnnTrainOptions topts;
        topts.epochs = 30;
        cnn.train(train, topts);
        const double acc = cnn.evaluate(test);

        double def_time = 0.0;
        for (const auto *m : zoo.pretrained()) {
            def_time += gpusim::TraceGenerator(m->signature)
                            .generateDefended(m->arch, 2, strength)
                            .totalTime();
        }
        def_time /= static_cast<double>(base_count);
        const double overhead = 100.0 * (def_time / base_time - 1.0);

        t.row().cell(strength, 2).cell(acc, 4).cell(overhead, 1);
        if (strength == 0.0)
            acc_clean = acc;
        if (strength == 1.0)
            acc_full = acc;
    }

    util::printBanner(std::cout,
                      "Sec. 8 countermeasure: randomized kernel "
                      "selection vs extractor accuracy");
    t.printAscii(std::cout);
    const double chance =
        1.0 / static_cast<double>(zoo.pretrained().size());
    std::cout << "\nchance level: " << chance
              << "\naccuracy clean vs fully defended: " << acc_clean
              << " -> " << acc_full
              << "  (defense must erode identification at a runtime "
                 "cost)\n";
    return acc_clean > 0.7 && acc_full < acc_clean - 0.2 ? 0 : 1;
}
