/**
 * @file
 * Quantization ablation (paper Sec. 8 "Supporting Quantization and
 * Pruning"): selective weight extraction against victims checkpointed
 * in bfloat16 and float16. bfloat16 keeps float32's 8-bit exponent,
 * so the very same fraction positions are checked; float16's narrower
 * exponent needs the window clamp. The bench reports pruning
 * efficiency and extraction correctness per storage format.
 */

#include <iostream>

#include "bench/workloads.hh"
#include "extraction/bitprobe.hh"
#include "extraction/selective.hh"
#include "util/table.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"

using namespace decepticon;

int
main()
{
    gpusim::ArchParams arch = bench::bertBaseArch();
    const auto pre = zoo::WeightStore::makePretrained(arch, 81, 15000);
    zoo::FineTuneOptions fopts;
    const auto victim_fp32 =
        zoo::FineTuneSimulator::fineTune(pre, fopts, 82);

    struct Format
    {
        const char *label;
        extraction::FloatFormat fmt;
    };
    const Format formats[] = {
        {"float32", extraction::kFloat32},
        {"bfloat16", extraction::kBfloat16},
        {"float16", extraction::kFloat16},
    };

    util::Table t({"victim storage", "weights skipped", "bits excluded",
                   "correct extractions", "bits read"});
    double worst_correct = 1.0;
    for (const auto &f : formats) {
        // The victim's checkpoint is quantized; the attacker's
        // pre-trained baseline stays float32 (he downloaded it).
        const auto victim = extraction::quantizeStore(victim_fp32, f.fmt);
        extraction::WeightStoreOracle oracle(victim);
        extraction::BitProbeChannel channel(oracle);

        extraction::ExtractionPolicy policy;
        policy.storageFormat = f.fmt;
        // The audit budget must absorb the quantization step of the
        // coarser formats in addition to the fine-tuning gap.
        const double q_step =
            std::ldexp(1.0, -f.fmt.fractionBits) * 0.5;
        policy.errorTolerance = 0.002 + q_step;
        extraction::SelectiveWeightExtractor extractor(policy);

        extraction::ExtractionStats stats;
        for (std::size_t l = 0; l < pre.layers.size(); ++l) {
            const auto clone = extractor.extractLayer(
                pre.layers[l].w, channel, l, stats);
            extractor.auditAccuracy(clone, victim.layers[l].w,
                                    pre.layers[l].w, stats);
        }
        worst_correct = std::min(worst_correct, stats.correctFraction());
        t.row()
            .cell(f.label)
            .cell(stats.weightsSkippedFraction(), 4)
            .cell(stats.bitsExcludedFraction(), 4)
            .cell(stats.correctFraction(), 4)
            .cell(channel.stats().bitsRead);
    }

    util::printBanner(std::cout,
                      "Sec. 8 ablation: selective extraction vs victim "
                      "storage format");
    t.printAscii(std::cout);
    std::cout << "\nworst correct-extraction fraction: " << worst_correct
              << "  (the algorithm ports across formats with only the "
                 "bit-window clamp)\n";
    return worst_correct > 0.8 ? 0 : 1;
}
