/**
 * @file
 * Table 1 reproduction: downstream task accuracy when the first N
 * encoder layers of a fine-tuned model are replaced with the
 * pre-trained model's weights. Expected shape: replacing the first 2-3
 * layers costs only a few points of accuracy and degradation grows
 * with N — the property that lets Decepticon extract later layers
 * first and stop early (Sec. 6.1).
 */

#include <iostream>

#include "bench/workloads.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    const auto cfg = bench::benchConfig(6);
    auto pre = bench::pretrainBackbone(cfg, 41, 200, 5);

    transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen, 4100, 4.0);
    const auto train = task.sample(200, 1);
    const auto dev = task.sample(120, 2);
    auto victim = bench::fineTuneFrom(*pre, task, train, 7,
                                      bench::fineTuneOptions(4));
    const auto victim_eval = transformer::Trainer::evaluate(*victim, dev);

    util::Table t({"frozen first N layers", "accuracy", "F1",
                   "drop vs fine-tuned"});
    double acc_at_3 = 0.0;
    for (std::size_t n = 0; n <= cfg.numLayers; ++n) {
        transformer::TransformerClassifier probe(*victim);
        for (std::size_t l = 0; l < n; ++l)
            probe.copyEncoderFrom(*pre, l);
        const auto eval = transformer::Trainer::evaluate(probe, dev);
        t.row()
            .cell(n)
            .cell(eval.accuracy, 4)
            .cell(eval.macroF1, 4)
            .cell(victim_eval.accuracy - eval.accuracy, 4);
        if (n == 3)
            acc_at_3 = eval.accuracy;
    }

    util::printBanner(std::cout,
                      "Table 1: accuracy with first N layers replaced "
                      "by pre-trained weights");
    std::cout << "fine-tuned victim accuracy: " << victim_eval.accuracy
              << ", F1: " << victim_eval.macroF1 << "\n";
    t.printAscii(std::cout);

    // Acceptance: freezing 3 of 6 layers costs little accuracy.
    const double drop = victim_eval.accuracy - acc_at_3;
    std::cout << "\naccuracy drop at N=3: " << drop
              << "  (paper: 1-3% for the first 2-3 layers)\n";
    return drop <= 0.10 ? 0 : 1;
}
