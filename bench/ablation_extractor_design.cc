/**
 * @file
 * Design-choice ablations for the level-1 extractor (the knobs behind
 * paper Sec. 5.4): raster resolution and training images per model
 * (the paper collects 1787 images over 240 models), plus the value of
 * the top-k -> query-probe fallback: a victim is still recoverable
 * when the true lineage merely reaches the CNN's top-3, because the
 * variant detector finishes the job.
 */

#include <iostream>

#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "fingerprint/metrics.hh"
#include "util/table.hh"
#include "zoo/zoo.hh"

using namespace decepticon;

int
main()
{
    const auto zoo = zoo::ModelZoo::buildDefault(41, 24, 40);

    // ------------------------------------------------------------------
    // Resolution x dataset-size grid.
    // ------------------------------------------------------------------
    util::Table grid({"resolution", "images/model", "train imgs",
                      "top-1 acc", "top-3 acc"});
    double best_top1 = 0.0;
    double top3_at_best = 0.0;
    for (std::size_t res : {28u, 32u, 64u}) {
        for (std::size_t per_model : {2u, 5u}) {
            fingerprint::DatasetOptions opts;
            opts.imagesPerModel = per_model;
            opts.resolution = res;
            opts.seed = 3;
            const auto ds = fingerprint::buildDataset(zoo, opts);
            const auto [train, test] = ds.split(0.8, 7);

            fingerprint::FingerprintCnn cnn(res, ds.numClasses(), 5);
            fingerprint::CnnTrainOptions topts;
            topts.epochs = 30;
            cnn.train(train, topts);

            const double top1 = cnn.evaluate(test);
            const double top3 =
                fingerprint::topKAccuracy(cnn, test, 3);
            grid.row()
                .cell(res)
                .cell(per_model)
                .cell(train.samples.size())
                .cell(top1, 4)
                .cell(top3, 4);
            if (top1 > best_top1) {
                best_top1 = top1;
                top3_at_best = top3;
            }
        }
    }
    util::printBanner(std::cout,
                      "Extractor ablation: resolution x dataset size");
    grid.printAscii(std::cout);

    // ------------------------------------------------------------------
    // Per-class behaviour at the best operating point.
    // ------------------------------------------------------------------
    fingerprint::DatasetOptions opts;
    opts.imagesPerModel = 5;
    opts.resolution = 32;
    opts.seed = 3;
    const auto ds = fingerprint::buildDataset(zoo, opts);
    const auto [train, test] = ds.split(0.8, 7);
    fingerprint::FingerprintCnn cnn(32, ds.numClasses(), 5);
    fingerprint::CnnTrainOptions topts;
    topts.epochs = 30;
    cnn.train(train, topts);
    const auto cm = fingerprint::confusionMatrix(cnn, test);

    util::Table per_class({"lineage", "precision", "recall"});
    for (std::size_t c = 0; c < cm.numClasses(); ++c) {
        per_class.row()
            .cell(cm.classNames[c])
            .cell(cm.precision(c), 3)
            .cell(cm.recall(c), 3);
    }
    util::printBanner(std::cout,
                      "Per-lineage precision/recall (res 32, 5 "
                      "imgs/model)");
    per_class.printAscii(std::cout);

    std::cout << "\nbest top-1 accuracy: " << best_top1
              << "; top-3 at that point: " << top3_at_best
              << "\n(the pipeline forwards top-3 to the query-probe "
                 "variant detector, so top-3 bounds recoverability)\n";
    return best_top1 > 0.7 && top3_at_best >= best_top1 ? 0 : 1;
}
