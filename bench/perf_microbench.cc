/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths:
 * GEMM, transformer forward/backward, trace generation, rasterization,
 * CNN inference, and selective weight extraction throughput.
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "core/decepticon.hh"
#include "extraction/bitprobe.hh"
#include "extraction/resilient.hh"
#include "extraction/selective.hh"
#include "fault/fault.hh"
#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "gpusim/trace_generator.hh"
#include "sched/sched.hh"
#include "tensor/tensor.hh"
#include "trace/image.hh"
#include "transformer/classifier.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "util/rng.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"
#include "zoo/zoo.hh"

using namespace decepticon;

namespace {

void
BM_Matmul(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(1);
    tensor::Tensor a({n, n}), b({n, n});
    a.fillGaussian(rng, 1.0f);
    b.fillGaussian(rng, 1.0f);
    for (auto _ : state) {
        auto c = tensor::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(16)->Arg(64)->Arg(128);

void
BM_TransformerForward(benchmark::State &state)
{
    transformer::TransformerConfig cfg;
    cfg.vocab = 64;
    cfg.maxSeqLen = 32;
    cfg.hidden = 32;
    cfg.numLayers = static_cast<std::size_t>(state.range(0));
    cfg.numHeads = 4;
    cfg.ffnDim = 64;
    transformer::TransformerClassifier model(cfg, 2);
    std::vector<int> tokens(32, 5);
    for (auto _ : state) {
        auto lg = model.logits(tokens);
        benchmark::DoNotOptimize(lg.data());
    }
}
BENCHMARK(BM_TransformerForward)->Arg(2)->Arg(6)->Arg(12);

void
BM_SoftmaxRows(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(3);
    tensor::Tensor a({n, n});
    a.fillGaussian(rng, 2.0f);
    for (auto _ : state) {
        auto p = tensor::softmaxRows(a);
        benchmark::DoNotOptimize(p.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_SoftmaxRows)->Arg(32)->Arg(128);

void
BM_TransformerTrainStep(benchmark::State &state)
{
    transformer::TransformerConfig cfg;
    cfg.vocab = 64;
    cfg.maxSeqLen = 16;
    cfg.hidden = 32;
    cfg.numLayers = 4;
    cfg.numHeads = 4;
    cfg.ffnDim = 64;
    transformer::TransformerClassifier model(cfg, 3);
    std::vector<int> tokens(16, 5);
    for (auto _ : state) {
        const float loss = model.lossAndBackward(tokens, 1);
        benchmark::DoNotOptimize(loss);
    }
}
BENCHMARK(BM_TransformerTrainStep);

void
BM_TraceGeneration(benchmark::State &state)
{
    gpusim::SoftwareSignature sig;
    if (state.range(0) == 1) {
        sig.framework = gpusim::Framework::TensorFlow;
        sig.developer = gpusim::Developer::Google;
        sig.useXla = true;
    }
    const gpusim::TraceGenerator gen(sig);
    gpusim::ArchParams arch;
    arch.numLayers = 24;
    arch.hidden = 1024;
    arch.numHeads = 16;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        auto trace = gen.generate(arch, seed++);
        benchmark::DoNotOptimize(trace.records.data());
    }
}
BENCHMARK(BM_TraceGeneration)->Arg(0)->Arg(1);

void
BM_Rasterize(benchmark::State &state)
{
    gpusim::SoftwareSignature sig;
    const gpusim::TraceGenerator gen(sig);
    gpusim::ArchParams arch;
    arch.numLayers = 24;
    arch.hidden = 1024;
    const auto trace = gen.generate(arch, 1);
    const auto res = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto img = trace::rasterize(trace, res);
        benchmark::DoNotOptimize(img.data());
    }
}
BENCHMARK(BM_Rasterize)->Arg(32)->Arg(64)->Arg(128);

void
BM_CnnPredict(benchmark::State &state)
{
    fingerprint::FingerprintCnn cnn(64, 16, 4);
    tensor::Tensor img({64, 64}, 0.2f);
    for (auto _ : state) {
        const int pred = cnn.predict(img);
        benchmark::DoNotOptimize(pred);
    }
}
BENCHMARK(BM_CnnPredict);

void
BM_SelectiveExtraction(benchmark::State &state)
{
    sched::setThreads(static_cast<std::size_t>(state.range(0)));
    gpusim::ArchParams arch;
    arch.numLayers = 2;
    arch.hidden = 768;
    const auto pre = zoo::WeightStore::makePretrained(arch, 5, 10000);
    zoo::FineTuneOptions fopts;
    const auto victim = zoo::FineTuneSimulator::fineTune(pre, fopts, 6);
    extraction::WeightStoreOracle oracle(victim);
    extraction::ExtractionPolicy policy;
    extraction::SelectiveWeightExtractor extractor(policy);
    for (auto _ : state) {
        extraction::BitProbeChannel channel(oracle);
        extraction::ExtractionStats stats;
        auto clone =
            extractor.extractLayer(pre.layers[0].w, channel, 0, stats);
        benchmark::DoNotOptimize(clone.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 10000);
    sched::setThreads(0);
}
// Threaded sweeps must be timed (and iteration-counted) on the wall
// clock: with pool workers doing the work, cpu_time sums all lanes
// and would hide any speedup.
BENCHMARK(BM_SelectiveExtraction)->Arg(1)->Arg(4)->UseRealTime();

/**
 * The headline parallel path: whole-zoo fingerprint dataset
 * generation at 1 / 2 / 4 scheduler lanes. main() folds the per-lane
 * real_time gauges into bench.BM_DatasetGeneration.speedup_<N>t so
 * BENCH_perf_microbench.json carries the scaling curve directly.
 */
void
BM_DatasetGeneration(benchmark::State &state)
{
    sched::setThreads(static_cast<std::size_t>(state.range(0)));
    zoo::ModelZoo zoo = zoo::ModelZoo::buildDefault(11, 4, 8);
    fingerprint::DatasetOptions opts;
    opts.imagesPerModel = 2;
    opts.resolution = 32;
    opts.seed = 5;
    std::size_t samples = 0;
    for (auto _ : state) {
        auto ds = fingerprint::buildDataset(zoo, opts);
        samples = ds.samples.size();
        benchmark::DoNotOptimize(ds.samples.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(samples));
    sched::setThreads(0);
}
BENCHMARK(BM_DatasetGeneration)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/**
 * Flight-recorder overhead probe: the same forward pass as
 * BM_TransformerForward/12, but with the flight recorder armed.
 * main() folds the pair into bench.flight.overhead_pct; the budget
 * for always-on flight recording is <5% of real time.
 */
void
BM_TransformerForwardFlightOn(benchmark::State &state)
{
    obs::ObsConfig ocfg;
    ocfg.flightMode = obs::FlightMode::On;
    obs::configure(ocfg);
    transformer::TransformerConfig cfg;
    cfg.vocab = 64;
    cfg.maxSeqLen = 32;
    cfg.hidden = 32;
    cfg.numLayers = 12;
    cfg.numHeads = 4;
    cfg.ffnDim = 64;
    transformer::TransformerClassifier model(cfg, 2);
    std::vector<int> tokens(32, 5);
    for (auto _ : state) {
        auto lg = model.logits(tokens);
        benchmark::DoNotOptimize(lg.data());
    }
    obs::configure(obs::ObsConfig{});
    obs::flightRecorder().clear();
}
BENCHMARK(BM_TransformerForwardFlightOn);

/**
 * Drive one compact end-to-end slice of the attack pipeline with the
 * global metrics registry enabled, so the snapshot carries per-stage
 * latency histograms. main() folds them into
 * bench.stage.<stage>.p50_micros / .p99_micros gauges — the inputs
 * bench_compare.py gates p99 regressions on.
 *
 * The timestamp channel is jammed on the fused point so the decision
 * graph cannot take the healthy-quorum short-circuit: the fusion
 * engine must run, and the "fuse" stage collects real samples.
 */
void
runStageLatencyWorkload()
{
    obs::ObsConfig ocfg;
    ocfg.metricsEnabled = true;
    obs::configure(ocfg);

    zoo::ModelZoo pool = zoo::ModelZoo::buildDefault(9, 4, 8);
    core::DecepticonOptions dopts;
    dopts.datasetOptions.imagesPerModel = 2;
    dopts.datasetOptions.resolution = 32;
    dopts.cnnOptions.epochs = 10;
    dopts.seed = 17;
    core::Decepticon pipeline(dopts);
    pipeline.trainExtractor(pool);

    fault::MultiChannelFaultSpec mspec;
    mspec.seed = 0xbe7a;
    mspec.at(fault::Channel::Timestamp).jammed = true;
    fault::MultiChannelFaultModel mfaults(mspec);

    fault::FaultSpec tspec;
    tspec.recordDropRate = 0.02;
    tspec.recordDuplicateRate = 0.01;
    tspec.seed = 616;
    fault::FaultInjector tinj(tspec);

    const gpusim::EmissionOptions eopts;
    std::uint64_t cap_seed = 0;
    std::size_t n = 0;
    for (const auto *victim : pool.finetuned()) {
        if (n >= 6)
            break; // enough samples per stage; keep the bench brisk
        const gpusim::TraceGenerator gen(victim->signature);
        const auto trace =
            gen.generate(victim->arch, 0x5ca1eULL + n); // trace_capture
        pipeline.identify(
            tinj.corruptTrace(trace, ++cap_seed)); // classify
        const auto power = gpusim::emitPowerTrace(trace, eopts, n);
        const auto thermal = gpusim::emitThermalTrace(trace, eopts, n);
        const auto counters =
            gpusim::emitProfilerCounters(trace, eopts, n);
        core::MultiChannelCapture mc;
        for (std::size_t r = 0; r < 2; ++r) {
            ++cap_seed;
            mc.powerCaptures.push_back(mfaults.corrupt(
                fault::Channel::Power, power, cap_seed));
            mc.thermalCaptures.push_back(mfaults.corrupt(
                fault::Channel::Thermal, thermal, cap_seed));
            mc.profilerCaptures.push_back(mfaults.corrupt(
                fault::Channel::Profiler, counters, cap_seed));
        }
        pipeline.identifyFused(mc); // fuse
        ++n;
    }

    // probe + extract: one small layer pulled through the retrying
    // prober (per-bit probe spans) and the selective extractor.
    gpusim::ArchParams arch;
    arch.numLayers = 2;
    arch.hidden = 128;
    const auto pre = zoo::WeightStore::makePretrained(arch, 5, 2000);
    zoo::FineTuneOptions fopts;
    const auto victim = zoo::FineTuneSimulator::fineTune(pre, fopts, 6);
    extraction::WeightStoreOracle oracle(victim);
    extraction::BitProbeChannel channel(oracle);
    extraction::ResilienceOptions ropts;
    extraction::RetryingProber prober(channel, ropts, nullptr);
    extraction::ExtractionPolicy policy;
    extraction::SelectiveWeightExtractor extractor(policy);
    extraction::ExtractionStats stats;
    auto clone =
        extractor.extractLayer(pre.layers[0].w, prober, 0, stats);
    benchmark::DoNotOptimize(clone.data());

    // Stop collecting but keep the registry contents: shutdown()
    // would wipe the gauges the reporter already folded in.
    obs::configure(obs::ObsConfig{});
}

/**
 * Console reporter that additionally folds every finished run into
 * the global metrics registry as "bench.<name>.*" gauges, so the
 * process can drop a machine-readable BENCH_*.json snapshot next to
 * the usual console table.
 */
class MetricsReporter : public benchmark::ConsoleReporter
{
  public:
    void ReportRuns(const std::vector<Run> &runs) override
    {
        benchmark::ConsoleReporter::ReportRuns(runs);
        auto &reg = obs::metrics();
        for (const auto &run : runs) {
            if (run.error_occurred)
                continue;
            const std::string base = "bench." + run.benchmark_name();
            reg.setGauge(base + ".real_time",
                         run.GetAdjustedRealTime());
            reg.setGauge(base + ".cpu_time", run.GetAdjustedCPUTime());
            reg.setGauge(base + ".iterations",
                         static_cast<double>(run.iterations));
            for (const auto &kv : run.counters)
                reg.setGauge(base + "." + kv.first,
                             static_cast<double>(kv.second));
        }
    }
};

} // namespace

int
main(int argc, char **argv)
{
    obs::initFromEnv();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    MetricsReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    // Distil the per-lane runs into serial/parallel speedup gauges so
    // the JSON snapshot answers "did threading pay off" in one line.
    // Wall-clock times only: cpu_time aggregates the pool workers and
    // would report a bogus ~n-fold "speedup". On a single-core host
    // the gauges are skipped outright — every lane count measures the
    // same serial machine, so a scaling ratio would be noise.
    auto &reg = obs::metrics();
    const auto lane_real_time = [&reg](const std::string &bench, int t) {
        const std::string base =
            "bench." + bench + "/" + std::to_string(t);
        // UseRealTime() runs carry a /real_time name suffix.
        const double v = reg.gauge(base + "/real_time.real_time");
        return v > 0.0 ? v : reg.gauge(base + ".real_time");
    };
    const auto record_speedup = [&](const std::string &bench, int t) {
        const double serial = lane_real_time(bench, 1);
        const double par = lane_real_time(bench, t);
        if (serial > 0.0 && par > 0.0)
            reg.setGauge("bench." + bench + ".speedup_" +
                             std::to_string(t) + "t",
                         serial / par);
    };
    if (sched::hardwareThreads() > 1) {
        record_speedup("BM_DatasetGeneration", 2);
        record_speedup("BM_DatasetGeneration", 4);
        record_speedup("BM_SelectiveExtraction", 4);
    }
    reg.setGauge("bench.hardware_threads",
                 static_cast<double>(sched::hardwareThreads()));

    // Flight overhead: armed vs unarmed forward pass, as a percent of
    // the unarmed real time. Budget: <5%.
    const double base_rt =
        reg.gauge("bench.BM_TransformerForward/12.real_time");
    const double flight_rt =
        reg.gauge("bench.BM_TransformerForwardFlightOn.real_time");
    if (base_rt > 0.0 && flight_rt > 0.0)
        reg.setGauge("bench.flight.overhead_pct",
                     (flight_rt - base_rt) / base_rt * 100.0);

    // Per-stage latency quantiles from the instrumented pipeline
    // slice, exported as plain gauges so bench_compare.py can gate
    // p99 regressions without reparsing histograms.
    runStageLatencyWorkload();
    for (const char *stage : {"probe", "trace_capture", "classify",
                              "fuse", "extract"}) {
        const auto hist =
            reg.latency(std::string("stage.") + stage + ".micros");
        if (!hist || hist->total() == 0)
            continue;
        const std::string base = std::string("bench.stage.") + stage;
        reg.setGauge(base + ".p50_micros", hist->quantile(0.50));
        reg.setGauge(base + ".p99_micros", hist->quantile(0.99));
        reg.setGauge(base + ".samples",
                     static_cast<double>(hist->total()));
    }

    std::ofstream out("BENCH_perf_microbench.json");
    obs::metrics().exportJson(out);
    out << "\n";
    std::cout << "\nwrote BENCH_perf_microbench.json\n";
    obs::flush();
    return 0;
}
