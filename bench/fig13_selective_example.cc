/**
 * @file
 * Figure 13 reproduction: the worked selective-extraction example. A
 * pre-trained weight of 0.018 was fine-tuned to 0.01908; the sign,
 * exponent, and leading fraction bits are identical, and only the two
 * fraction bits whose place values (2^-10 ~ 0.00098 and 2^-11 ~
 * 0.00049) cover the expected ~0.002 gap need checking. The bench
 * prints the bit-level anatomy and runs Algorithm 1 on the example.
 */

#include <bitset>
#include <iostream>

#include "extraction/bitprobe.hh"
#include "extraction/ieee.hh"
#include "extraction/selective.hh"
#include "util/table.hh"
#include "zoo/weight_store.hh"

using namespace decepticon;

namespace {

std::string
fieldString(float v)
{
    const std::uint32_t bits = extraction::floatToBits(v);
    const std::bitset<1> sign(bits >> 31);
    const std::bitset<8> exponent(bits >> 23);
    const std::bitset<23> fraction(bits);
    return sign.to_string() + " | " + exponent.to_string() + " | " +
           fraction.to_string();
}

} // namespace

int
main()
{
    const float base = 0.018f;    // pre-trained weight
    const float actual = 0.01908f; // black-box fine-tuned weight

    util::printBanner(std::cout, "Fig. 13: IEEE-754 anatomy");
    std::cout << "pre-trained  0.018   = " << fieldString(base) << "\n"
              << "fine-tuned   0.01908 = " << fieldString(actual) << "\n";

    // Which bits differ?
    const std::uint32_t diff = extraction::floatToBits(base) ^
                               extraction::floatToBits(actual);
    std::cout << "differing bits       = "
              << std::bitset<32>(diff).to_string() << "\n";
    std::cout << "sign equal: "
              << (extraction::signBit(base) == extraction::signBit(actual))
              << ", exponent equal: "
              << (extraction::exponentField(base) ==
                  extraction::exponentField(actual))
              << "\n";

    // Place values the paper highlights.
    util::Table t({"fraction position k", "place value 2^(exp-k)",
                   "within the ~0.002 gap?"});
    for (int k = 1; k <= 6; ++k) {
        const double pv = extraction::fractionBitPlaceValue(base, k);
        t.row().cell(k).cell(pv, 7).cell(pv <= 0.002 ? "check" : "skip");
    }
    t.printAscii(std::cout);

    // Run Algorithm 1 on the example.
    zoo::WeightStore store;
    store.layers.push_back({"l0", {actual}});
    extraction::WeightStoreOracle oracle(store);
    extraction::BitProbeChannel channel(oracle);
    extraction::ExtractionPolicy policy;
    policy.baseDist = 0.002;
    policy.uShapeAlpha = 0.0;
    policy.significance = 0.0002;
    extraction::SelectiveWeightExtractor extractor(policy);
    extraction::ExtractionStats stats;
    const float clone =
        extractor.extractWeight(base, channel, 0, 0, stats);

    std::cout << "\nAlgorithm 1: checked " << stats.bitsChecked
              << " bits (paper: 2); clone = " << clone
              << "; residual = " << std::abs(clone - actual)
              << " (below the 0.001 significance floor)\n";

    const bool shape_ok = stats.bitsChecked == 2 &&
                          std::abs(clone - actual) < 0.001;
    return shape_ok ? 0 : 1;
}
