/**
 * @file
 * Figure 16 reproduction. Left panel: how much checking selective
 * weight extraction removes — the fraction of weights reusable without
 * any bit read and the fraction of bits excluded from hammering, with
 * the error accounting of Sec. 7.4 (a weight is incorrectly extracted
 * if its actual gap exceeded the expected amount or its sign flipped).
 * Right panel: the task head's share of total model weights across
 * transformer size classes (at most ~0.009%), which is why full-read
 * extraction of the last layer is affordable.
 */

#include <iostream>

#include "bench/workloads.hh"
#include "extraction/bitprobe.hh"
#include "extraction/selective.hh"
#include "util/table.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"

using namespace decepticon;

int
main()
{
    // --------------------------------------------------------------
    // Left panel: extraction pruning on a BERT-base-shaped pair.
    // --------------------------------------------------------------
    gpusim::ArchParams arch = bench::bertBaseArch();
    const auto pre = zoo::WeightStore::makePretrained(arch, 16, 20000);
    zoo::FineTuneOptions fopts;
    fopts.headWeights = 64;
    const auto victim = zoo::FineTuneSimulator::fineTune(pre, fopts, 17);

    extraction::WeightStoreOracle oracle(victim);
    extraction::BitProbeChannel channel(oracle);
    extraction::ExtractionPolicy policy;
    extraction::SelectiveWeightExtractor extractor(policy);

    extraction::ExtractionStats stats;
    for (std::size_t l = 0; l < pre.layers.size(); ++l) {
        const auto clone = extractor.extractLayer(pre.layers[l].w,
                                                  channel, l, stats);
        extractor.auditAccuracy(clone, victim.layers[l].w,
                                pre.layers[l].w, stats);
    }
    // Task head: full 32-bit reads (no baseline exists).
    extractor.extractHead(channel, pre.layers.size(),
                          victim.head.w.size(), stats);

    util::Table left({"metric", "value"});
    left.row().cell("weights (encoder layers)").cell(
        stats.totalWeights - stats.fullWeightsRead);
    left.row().cell("weights reused w/o any read").cell(
        stats.weightsSkipped);
    left.row().cell("weights skipped (fraction)").cell(
        stats.weightsSkippedFraction(), 4);
    left.row().cell("bits excluded (fraction)").cell(
        stats.bitsExcludedFraction(), 4);
    left.row().cell("correct extractions (fraction)").cell(
        stats.correctFraction(), 4);
    left.row().cell("sign flips observed").cell(stats.signFlips);
    left.row().cell("bits read total").cell(channel.stats().bitsRead);

    util::printBanner(std::cout,
                      "Fig. 16 (left): selective extraction pruning, "
                      "BERT-base shape");
    left.printAscii(std::cout);

    // --------------------------------------------------------------
    // Right panel: last-layer weight share per size class.
    // --------------------------------------------------------------
    struct SizeClass
    {
        const char *label;
        std::size_t layers;
        std::size_t hidden;
    };
    const SizeClass sizes[] = {
        {"tiny", 2, 128},   {"mini", 4, 256},    {"small", 4, 512},
        {"medium", 8, 512}, {"base", 12, 768},   {"large", 24, 1024},
        {"xlarge", 24, 2048}, {"xxlarge", 12, 4096},
    };
    util::Table right({"size class", "total weights (analytic)",
                       "head weights", "head share (%)"});
    double worst_share = 0.0;
    for (const auto &s : sizes) {
        gpusim::ArchParams a;
        a.numLayers = s.layers;
        a.hidden = s.hidden;
        a.numClasses = 2;
        const auto ws = zoo::WeightStore::makePretrained(a, 1, 1);
        const double share = 100.0 * ws.headWeightFraction();
        worst_share = std::max(worst_share, share);
        right.row()
            .cell(s.label)
            .cell(ws.analyticTotalWeights())
            .cell(ws.analyticHeadWeights)
            .cell(share, 5);
    }
    util::printBanner(std::cout,
                      "Fig. 16 (right): task-head share of model "
                      "weights per size class");
    right.printAscii(std::cout);
    std::cout << "\nworst head share: " << worst_share
              << "%  (paper: 0.0005%-0.009%)\n";

    const bool shape_ok = stats.weightsSkippedFraction() > 0.75 &&
                          stats.bitsExcludedFraction() > 0.85 &&
                          stats.correctFraction() > 0.85 &&
                          worst_share < 0.05;
    return shape_ok ? 0 : 1;
}
