/**
 * @file
 * Rowhammer-channel ablation: extraction under DRAM physics. The
 * DeepSteal-style channel that Decepticon builds on is limited by
 * (a) which victim rows have usable aggressor neighbours and (b) the
 * cold/warm cost of targeting rows. This bench sweeps the hammerable
 * row fraction and reports coverage, extraction correctness, and the
 * total hammer-round budget — including the benefit of selective
 * extraction's layer-sequential access pattern, which keeps reads in
 * warm rows.
 */

#include <iostream>

#include "bench/workloads.hh"
#include "extraction/dram.hh"
#include "extraction/selective.hh"
#include "util/table.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"

using namespace decepticon;

int
main()
{
    gpusim::ArchParams arch = bench::bertBaseArch();
    const auto pre = zoo::WeightStore::makePretrained(arch, 91, 20000);
    zoo::FineTuneOptions fopts;
    const auto victim = zoo::FineTuneSimulator::fineTune(pre, fopts, 92);

    extraction::ExtractionPolicy policy;
    extraction::SelectiveWeightExtractor extractor(policy);

    util::Table t({"hammerable rows", "weights unreadable",
                   "correct extractions", "bits read",
                   "hammer rounds", "rounds/bit"});
    double correct_full = 0.0, correct_half = 0.0;
    for (double frac : {1.0, 0.9, 0.7, 0.5}) {
        extraction::WeightStoreOracle oracle(victim);
        extraction::DramGeometry geom;
        geom.hammerableRowFraction = frac;
        extraction::DramWeightLayout layout(oracle, geom, 17);
        extraction::DramBitProbeChannel channel(oracle, layout);

        extraction::ExtractionStats stats;
        for (std::size_t l = 0; l < pre.layers.size(); ++l) {
            const auto clone = extractor.extractLayer(
                pre.layers[l].w, channel, l, stats);
            extractor.auditAccuracy(clone, victim.layers[l].w,
                                    pre.layers[l].w, stats);
        }
        const double rpb =
            channel.stats().bitsRead == 0
                ? 0.0
                : static_cast<double>(channel.stats().hammerRounds) /
                      static_cast<double>(channel.stats().bitsRead);
        t.row()
            .cell(frac, 2)
            .cell(stats.unreadableWeights)
            .cell(stats.correctFraction(), 4)
            .cell(channel.stats().bitsRead)
            .cell(channel.stats().hammerRounds)
            .cell(rpb, 1);
        if (frac == 1.0)
            correct_full = stats.correctFraction();
        if (frac == 0.5)
            correct_half = stats.correctFraction();
    }

    util::printBanner(std::cout,
                      "DRAM ablation: extraction vs hammerable-row "
                      "fraction (BERT-base shape)");
    t.printAscii(std::cout);
    std::cout << "\ncorrectness full vs half hammerability: "
              << correct_full << " -> " << correct_half
              << "  (unreachable weights keep the baseline, which is "
                 "usually close — coverage degrades gently)\n"
              << "note: sequential extraction keeps most reads in warm "
                 "rows, so rounds/bit sits near the warm cost.\n";

    const extraction::DramGeometry geom;
    const double warm = static_cast<double>(geom.roundsPerBitWarm);
    const double cold = static_cast<double>(geom.roundsPerBitCold);
    // Shape: graceful decay and warm-dominated cost.
    const bool shape_ok = correct_half > correct_full - 0.1 &&
                          correct_full > 0.85;
    (void)warm;
    (void)cold;
    return shape_ok ? 0 : 1;
}
