/**
 * @file
 * Figure 9 reproduction: the kernel census of BERT-large releases from
 * different sources — total kernel executions, unique kernels, and a
 * sample of kernel names per source. Expected shape: TensorFlow
 * releases run up to ~8x more kernel executions and expose tens of
 * times more unique kernels than PyTorch releases; only a handful of
 * kernels are shared across sources.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <set>

#include "bench/workloads.hh"
#include "gpusim/trace_generator.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    struct Source
    {
        const char *label;
        gpusim::SoftwareSignature sig;
    };
    std::vector<Source> sources;
    {
        gpusim::SoftwareSignature hf;
        hf.kernelDialect = 11;
        sources.push_back({"huggingface pytorch squad", hf});

        gpusim::SoftwareSignature meta;
        meta.developer = gpusim::Developer::Meta;
        meta.kernelDialect = 12;
        sources.push_back({"meta (roberta) pytorch mnli", meta});

        gpusim::SoftwareSignature nvp;
        nvp.developer = gpusim::Developer::Nvidia;
        nvp.useTensorCores = true;
        nvp.kernelDialect = 13;
        sources.push_back({"nvidia pytorch squad", nvp});

        gpusim::SoftwareSignature nvt;
        nvt.framework = gpusim::Framework::TensorFlow;
        nvt.developer = gpusim::Developer::Nvidia;
        nvt.useTensorCores = true;
        nvt.useXla = true;
        nvt.kernelDialect = 14;
        sources.push_back({"nvidia tensorflow squad", nvt});
    }

    const auto arch = bench::bertLargeArch();
    util::Table census({"source", "kernel executions", "unique kernels"});
    std::vector<std::set<std::string>> names_per_source;
    std::size_t pt_execs = 0, tf_execs = 0, pt_unique = 1, tf_unique = 0;
    for (const auto &src : sources) {
        const gpusim::TraceGenerator gen(src.sig);
        const auto trace = gen.generate(arch, 1);
        census.row()
            .cell(src.label)
            .cell(trace.records.size())
            .cell(trace.uniqueKernelCount());

        std::set<std::string> names;
        std::map<std::string, std::size_t> counts;
        for (const auto &r : trace.records) {
            names.insert(trace.kernelNames[r.kernelId]);
            ++counts[trace.kernelNames[r.kernelId]];
        }
        names_per_source.push_back(names);

        // Top kernels by invocation count, like the paper's listing.
        std::vector<std::pair<std::size_t, std::string>> top;
        for (const auto &[name, count] : counts)
            top.emplace_back(count, name);
        std::sort(top.rbegin(), top.rend());
        std::cout << "\n" << src.label << " — top kernels:\n";
        for (std::size_t i = 0; i < std::min<std::size_t>(8, top.size());
             ++i) {
            std::cout << "    " << top[i].second << " (x" << top[i].first
                      << ")\n";
        }

        if (std::string(src.label).find("tensorflow") !=
            std::string::npos) {
            tf_execs = trace.records.size();
            tf_unique = trace.uniqueKernelCount();
        } else if (std::string(src.label) ==
                   "huggingface pytorch squad") {
            pt_execs = trace.records.size();
            pt_unique = trace.uniqueKernelCount();
        }
    }

    util::printBanner(std::cout, "Fig. 9: kernel census per source");
    census.printAscii(std::cout);

    // Cross-source kernel overlap (paper: only a handful shared).
    std::set<std::string> shared = names_per_source[0];
    for (std::size_t i = 1; i < names_per_source.size(); ++i) {
        std::set<std::string> next;
        std::set_intersection(shared.begin(), shared.end(),
                              names_per_source[i].begin(),
                              names_per_source[i].end(),
                              std::inserter(next, next.begin()));
        shared = next;
    }
    std::cout << "\nkernels common to all four sources: " << shared.size()
              << "\nTF/PyTorch execution ratio: "
              << static_cast<double>(tf_execs) /
                     static_cast<double>(pt_execs)
              << "  (paper: up to ~8x)"
              << "\nTF/PyTorch unique-kernel ratio: "
              << static_cast<double>(tf_unique) /
                     static_cast<double>(pt_unique)
              << "  (paper: up to ~40x)\n";

    const double exec_ratio = static_cast<double>(tf_execs) /
                              static_cast<double>(pt_execs);
    return exec_ratio > 3.0 && shared.size() < 6 ? 0 : 1;
}
