/**
 * @file
 * Figure 4 reproduction: the update magnitude |delta W| as a function
 * of the pre-trained weight value. Expected shape: a U — weights far
 * from zero receive over 3x larger updates than weights near zero,
 * and the outermost ~10% of weights source the long tail of Fig. 3.
 */

#include <cmath>
#include <iostream>

#include "bench/workloads.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"

using namespace decepticon;

int
main()
{
    gpusim::ArchParams arch = bench::bertBaseArch();
    const auto pre = zoo::WeightStore::makePretrained(arch, 5, 40000);
    zoo::FineTuneOptions fopts;
    const auto ft = zoo::FineTuneSimulator::fineTune(pre, fopts, 6);

    // Bin |delta| by pre-trained weight value in [-0.5, 0.5].
    constexpr std::size_t kBins = 20;
    std::vector<double> sums(kBins, 0.0);
    std::vector<std::size_t> counts(kBins, 0);
    const double lo = -0.5, hi = 0.5;
    for (std::size_t l = 0; l < pre.layers.size(); ++l) {
        for (std::size_t i = 0; i < pre.layers[l].w.size(); ++i) {
            const double w = pre.layers[l].w[i];
            if (w < lo || w >= hi)
                continue;
            const auto bin = static_cast<std::size_t>(
                (w - lo) / (hi - lo) * kBins);
            sums[bin] += std::fabs(
                static_cast<double>(ft.layers[l].w[i]) -
                pre.layers[l].w[i]);
            ++counts[bin];
        }
    }

    util::Table t({"pretrained_w", "mean|dW|", "weights"});
    std::vector<double> centers, means;
    for (std::size_t b = 0; b < kBins; ++b) {
        if (counts[b] == 0)
            continue;
        const double center =
            lo + (static_cast<double>(b) + 0.5) * (hi - lo) / kBins;
        const double mean = sums[b] / static_cast<double>(counts[b]);
        centers.push_back(center);
        means.push_back(mean);
        t.row().cell(center, 3).cell(mean, 6).cell(counts[b]);
    }
    util::printBanner(std::cout,
                      "Fig. 4: update magnitude vs pre-trained value");
    t.printAscii(std::cout);

    // U-shape check: outer bins (|w| > 0.25) vs inner bins (|w| < 0.1).
    double outer = 0.0, inner = 0.0;
    std::size_t n_outer = 0, n_inner = 0;
    for (std::size_t i = 0; i < centers.size(); ++i) {
        if (std::fabs(centers[i]) > 0.25) {
            outer += means[i];
            ++n_outer;
        } else if (std::fabs(centers[i]) < 0.1) {
            inner += means[i];
            ++n_inner;
        }
    }
    outer /= static_cast<double>(n_outer);
    inner /= static_cast<double>(n_inner);
    std::cout << "\nouter(|w|>0.25) / inner(|w|<0.1) update ratio: "
              << outer / inner << "  (paper: > 3x)\n";
    return outer / inner > 3.0 ? 0 : 1;
}
