/**
 * @file
 * Figure 7 reproduction: time-series kernel execution traces of the
 * same architecture (BERT-large shape) released by different sources
 * share no common pattern. We print per-source trace statistics and
 * the pairwise distance between their fingerprint images — large
 * across sources, small between runs of the same source.
 */

#include <iostream>
#include <vector>

#include "bench/workloads.hh"
#include "gpusim/trace_generator.hh"
#include "trace/image.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    struct Source
    {
        const char *label;
        gpusim::SoftwareSignature sig;
    };
    std::vector<Source> sources;
    {
        gpusim::SoftwareSignature hf;
        hf.kernelDialect = 1;
        sources.push_back({"huggingface/pytorch", hf});

        gpusim::SoftwareSignature nv;
        nv.developer = gpusim::Developer::Nvidia;
        nv.useTensorCores = true;
        nv.kernelDialect = 2;
        sources.push_back({"nvidia/pytorch(tensor-core)", nv});

        gpusim::SoftwareSignature tf;
        tf.framework = gpusim::Framework::TensorFlow;
        tf.developer = gpusim::Developer::Nvidia;
        tf.useTensorCores = true;
        tf.useXla = true;
        tf.kernelDialect = 3;
        sources.push_back({"nvidia/tensorflow(xla)", tf});

        gpusim::SoftwareSignature meta;
        meta.developer = gpusim::Developer::Meta;
        meta.kernelDialect = 4;
        sources.push_back({"meta/pytorch(roberta)", meta});
    }

    const auto arch = bench::bertLargeArch();
    util::Table stats({"source", "kernel execs", "unique kernels",
                       "total ms", "peak kernel us"});
    std::vector<tensor::Tensor> images; // blurred, for distances
    std::vector<tensor::Tensor> raw;    // sharp, for display
    for (const auto &src : sources) {
        const gpusim::TraceGenerator gen(src.sig);
        const auto trace = gen.generate(arch, 1);
        stats.row()
            .cell(src.label)
            .cell(trace.records.size())
            .cell(trace.uniqueKernelCount())
            .cell(trace.totalTime() / 1000.0, 2)
            .cell(trace.peakDuration(), 1);
        raw.push_back(trace::rasterize(trace, 64));
        images.push_back(trace::boxBlur3(raw.back()));
    }
    util::printBanner(std::cout,
                      "Fig. 7: same architecture (BERT-large shape), "
                      "different sources");
    stats.printAscii(std::cout);

    // Terminal rendition of the paper's scatter plots.
    for (std::size_t s = 0; s < sources.size(); ++s) {
        std::cout << "\n" << sources[s].label
                  << " (x = time, y = kernel duration):\n"
                  << trace::renderAscii(raw[s], 56);
    }

    util::Table dist({"pair", "image distance"});
    double min_cross = 1e9;
    for (std::size_t a = 0; a < sources.size(); ++a) {
        for (std::size_t b = a + 1; b < sources.size(); ++b) {
            const double d = trace::imageDistance(images[a], images[b]);
            min_cross = std::min(min_cross, d);
            dist.row()
                .cell(std::string(sources[a].label) + " vs " +
                      sources[b].label)
                .cell(d, 5);
        }
    }
    // Same source, different run (jitter only).
    const gpusim::TraceGenerator gen(sources[0].sig);
    const double same_src = trace::imageDistance(
        images[0],
        trace::boxBlur3(trace::rasterize(gen.generate(arch, 2), 64)));
    dist.row().cell("huggingface run1 vs run2 (same source)")
        .cell(same_src, 5);

    util::printBanner(std::cout, "Fig. 7: fingerprint distances");
    dist.printAscii(std::cout);

    std::cout << "\nmin cross-source distance / same-source distance: "
              << min_cross / same_src
              << "  (sources must differ far more than runs)\n";
    return min_cross > 2.0 * same_src ? 0 : 1;
}
