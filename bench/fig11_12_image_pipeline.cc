/**
 * @file
 * Figures 11-12 reproduction: the CNN training-data pipeline. Fig. 11
 * is the image construction (plot traces with equal axis scales, strip
 * decorations, grayscale, resize, label with the pre-trained model
 * name; the paper collects 1787 images from 240 models). Fig. 12 is
 * the corner-case pre-processing: XLA-optimized releases interleave an
 * irregular compiler burst between two encoder regions, so the trace
 * is cropped to the periodic regions before rasterization.
 */

#include <iostream>

#include "fingerprint/boundary.hh"
#include "fingerprint/dataset.hh"
#include "gpusim/trace_generator.hh"
#include "trace/image.hh"
#include "util/table.hh"
#include "zoo/zoo.hh"

using namespace decepticon;

int
main()
{
    // ------------------------------------------------------------------
    // Fig. 11: dataset construction at the paper's population scale.
    // ------------------------------------------------------------------
    const auto zoo = zoo::ModelZoo::buildDefault(1112);
    fingerprint::DatasetOptions opts;
    opts.imagesPerModel = 7; // 240 models x 7 ~ the paper's 1787 images
    opts.resolution = 32;
    opts.seed = 2;
    const auto ds = fingerprint::buildDataset(zoo, opts);
    const auto [train, test] = ds.split(0.8, 3);

    util::Table t({"quantity", "value", "paper"});
    t.row().cell("models in zoo").cell(zoo.models().size()).cell("240");
    t.row().cell("images collected").cell(ds.samples.size())
        .cell("1787");
    t.row().cell("training split").cell(train.samples.size())
        .cell("80%");
    t.row().cell("test split").cell(test.samples.size()).cell("20%");
    t.row().cell("classes (pre-trained names)").cell(ds.numClasses())
        .cell("70");
    util::printBanner(std::cout, "Fig. 11: CNN training data");
    t.printAscii(std::cout);

    // An example labeled image, as the figure shows.
    const auto &sample = ds.samples.front();
    std::cout << "\nexample image, label '"
              << ds.classNames[static_cast<std::size_t>(sample.label)]
              << "' (model " << sample.modelName << "):\n"
              << trace::renderAscii(sample.image, 48);

    // ------------------------------------------------------------------
    // Fig. 12: irregular (XLA) traces and encoder-region cropping.
    // ------------------------------------------------------------------
    gpusim::SoftwareSignature xla;
    xla.framework = gpusim::Framework::TensorFlow;
    xla.developer = gpusim::Developer::Nvidia;
    xla.useTensorCores = true;
    xla.useXla = true;
    xla.kernelDialect = 12;
    const gpusim::TraceGenerator gen(xla);
    gpusim::ArchParams arch;
    arch.numLayers = 24;
    arch.hidden = 1024;
    arch.numHeads = 16;
    arch.seqLen = 128;
    const auto trace = gen.generate(arch, 5);

    std::size_t xla_records = 0;
    for (const auto &r : trace.records)
        xla_records += r.phase == gpusim::Phase::XlaRegion ? 1 : 0;

    const auto res = fingerprint::detectLayerBoundaries(trace);
    const auto cropped = fingerprint::cropToEncoderRegion(trace);

    util::Table x({"quantity", "value"});
    x.row().cell("total kernel records").cell(trace.records.size());
    x.row().cell("XLA-burst records").cell(xla_records);
    x.row().cell("periodic regions found").cell(res.regions.size());
    x.row().cell("encoder repetitions (should be 24)")
        .cell(res.repetitions);
    x.row().cell("records after cropping").cell(cropped.records.size());
    util::printBanner(std::cout,
                      "Fig. 12: XLA irregular trace, cropped to encoder "
                      "regions");
    x.printAscii(std::cout);

    const bool shape_ok = ds.samples.size() > 1500 &&
                          res.regions.size() >= 2 &&
                          res.repetitions == 24 &&
                          cropped.records.size() < trace.records.size();
    return shape_ok ? 0 : 1;
}
