/**
 * @file
 * Figure 3 reproduction: distribution of per-weight value gaps between
 * a pre-trained model and (a) its own fine-tuned descendant (XP-XF)
 * versus (b) a fine-tuned descendant of a different pre-trained model
 * (XP-YF). Expected shape: XP-XF concentrates within +/-0.01 with
 * ~50% of weights inside +/-0.002 and a long tail; XP-YF is at least
 * 20x wider.
 *
 * Two paths are reported: the statistical fine-tuning simulator on a
 * BERT-base-shaped weight store (the paper's scale), and real
 * gradient-descent fine-tuning of a small transformer (validating the
 * law emerges from actual transfer learning).
 */

#include <cmath>
#include <iostream>

#include "bench/workloads.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"

using namespace decepticon;

namespace {

void
summarize(const std::string &label, const std::vector<double> &deltas,
          util::Table &summary)
{
    std::vector<double> abs;
    abs.reserve(deltas.size());
    for (double d : deltas)
        abs.push_back(std::fabs(d));
    summary.row()
        .cell(label)
        .cell(deltas.size())
        .cell(util::mean(abs), 6)
        .cell(util::percentile(abs, 99), 5)
        .cell(util::Histogram::fractionWithinAbs(deltas, 0.002), 4)
        .cell(util::Histogram::fractionWithinAbs(deltas, 0.01), 4)
        .cell(util::Histogram::fractionWithinAbs(deltas, 0.2), 4);
}

void
printHistogram(const std::string &label, const std::vector<double> &deltas,
               double lo, double hi, std::size_t bins)
{
    util::Histogram h(lo, hi, bins);
    h.addAll(deltas);
    util::Table t({"bin_center", "count"});
    for (std::size_t i = 0; i < h.counts.size(); ++i)
        t.row().cell(h.binCenter(i), 4).cell(h.counts[i]);
    util::printBanner(std::cout, "Fig. 3 histogram: " + label);
    t.printAscii(std::cout);
}

} // namespace

int
main()
{
    util::Table summary({"pair", "weights", "mean|gap|", "p99|gap|",
                         "frac<=0.002", "frac<=0.01", "frac<=0.2"});

    // ---------------------------------------------------------------
    // Statistical path at BERT-base shape.
    // ---------------------------------------------------------------
    gpusim::ArchParams arch = bench::bertBaseArch();
    const auto pre_x = zoo::WeightStore::makePretrained(arch, 1, 20000);
    const auto pre_y = zoo::WeightStore::makePretrained(arch, 2, 20000);
    zoo::FineTuneOptions fopts;
    const auto ft_x = zoo::FineTuneSimulator::fineTune(pre_x, fopts, 3);
    const auto ft_y = zoo::FineTuneSimulator::fineTune(pre_y, fopts, 4);

    const auto same = ft_x.weightDeltas(pre_x);   // XP-XF
    const auto cross = ft_y.weightDeltas(pre_x);  // XP-YF

    summarize("sim XP-XF", same, summary);
    summarize("sim XP-YF", cross, summary);
    printHistogram("sim XP-XF (weight gap)", same, -0.02, 0.02, 21);
    printHistogram("sim XP-YF (weight gap)", cross, -0.6, 0.6, 21);

    // ---------------------------------------------------------------
    // Real-training path on a small transformer.
    // ---------------------------------------------------------------
    const auto cfg = bench::benchConfig(4);
    auto pre_a = bench::pretrainBackbone(cfg, 11);
    auto pre_b = bench::pretrainBackbone(cfg, 22);

    transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen, 77, 4.0);
    const auto data = task.sample(160, 5);
    auto ft_a = bench::fineTuneFrom(*pre_a, task, data, 7,
                                    bench::fineTuneOptions());

    auto backbone_deltas = [](transformer::TransformerClassifier &m,
                              transformer::TransformerClassifier &ref) {
        std::vector<double> out;
        auto pm = m.backboneParams();
        auto pr = ref.backboneParams();
        for (std::size_t p = 0; p < pm.size(); ++p)
            for (std::size_t i = 0; i < pm[p]->size(); ++i)
                out.push_back(
                    static_cast<double>(pm[p]->value[i]) -
                    pr[p]->value[i]);
        return out;
    };
    summarize("real XP-XF", backbone_deltas(*ft_a, *pre_a), summary);
    summarize("real XP-YF", backbone_deltas(*ft_a, *pre_b), summary);

    util::printBanner(std::cout, "Fig. 3 summary (weight value gaps)");
    summary.printAscii(std::cout);

    // Paper acceptance shape: XP-YF mean gap >= 20x XP-XF mean gap.
    std::vector<double> abs_same, abs_cross;
    for (double d : same)
        abs_same.push_back(std::fabs(d));
    for (double d : cross)
        abs_cross.push_back(std::fabs(d));
    const double ratio = util::mean(abs_cross) / util::mean(abs_same);
    std::cout << "\nXP-YF / XP-XF mean gap ratio (sim): " << ratio
              << "  (paper: >= 20x)\n";
    return ratio >= 20.0 ? 0 : 1;
}
