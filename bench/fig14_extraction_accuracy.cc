/**
 * @file
 * Figure 14 reproduction (plus the Fig. 11-12 pipeline it exercises):
 * the CNN pre-trained-model extractor's accuracy under measurement
 * noise. The CNN is trained on fingerprint images of the candidate
 * pool (80/20 split as in the paper), then evaluated with
 *   (a) 1-64 randomly chosen kernels perturbed by +/-20 us, and
 *   (b) 16 kernels perturbed by +/-5..45 us.
 * Expected shape: high accuracy without noise, decaying slowly under
 * both sweeps (the CNN is inherently error tolerant).
 */

#include <iostream>

#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "gpusim/noise.hh"
#include "gpusim/trace_generator.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "zoo/zoo.hh"

using namespace decepticon;

namespace {

/** Accuracy of the CNN over freshly captured, noise-injected traces. */
double
noisyAccuracy(fingerprint::FingerprintCnn &cnn, const zoo::ModelZoo &zoo,
              const std::vector<std::string> &class_names,
              std::size_t noisy_kernels, double magnitude_us,
              std::uint64_t seed)
{
    util::Rng rng(seed);
    std::size_t correct = 0, total = 0;
    for (const auto &model : zoo.models()) {
        int label = -1;
        for (std::size_t c = 0; c < class_names.size(); ++c) {
            if (class_names[c] == model.pretrainedName)
                label = static_cast<int>(c);
        }
        if (label < 0)
            continue;
        auto trace = gpusim::TraceGenerator(model.signature)
                         .generate(model.arch, rng.nextU64());
        if (noisy_kernels > 0) {
            trace = gpusim::applyTimingNoise(trace, noisy_kernels,
                                             magnitude_us, rng.nextU64());
        }
        const auto img =
            fingerprint::fingerprintImage(trace, cnn.resolution());
        correct += cnn.predict(img) == label ? 1 : 0;
        ++total;
    }
    return static_cast<double>(correct) / static_cast<double>(total);
}

} // namespace

int
main()
{
    // Candidate pool: 12 lineages with fine-tuned descendants.
    const auto zoo = zoo::ModelZoo::buildDefault(14, 12, 30);

    fingerprint::DatasetOptions dopts;
    dopts.imagesPerModel = 5;
    dopts.resolution = 32;
    dopts.seed = 2;
    const auto dataset = fingerprint::buildDataset(zoo, dopts);
    const auto [train, test] = dataset.split(0.8, 3);

    fingerprint::FingerprintCnn cnn(dopts.resolution,
                                    dataset.numClasses(), 4);
    fingerprint::CnnTrainOptions topts;
    topts.epochs = 40;
    cnn.train(train, topts);

    const double clean_heldout = cnn.evaluate(test);
    std::cout << "training images: " << train.samples.size()
              << ", test images: " << test.samples.size()
              << ", classes: " << dataset.numClasses() << "\n";
    std::cout << "held-out accuracy (no noise): " << clean_heldout
              << "  (paper: 90.78%)\n";

    // Sweep (a): number of noisy kernels at +/-20 us.
    util::Table ta({"noisy kernels", "accuracy"});
    double acc_k64 = 0.0;
    for (std::size_t n : {0, 1, 2, 4, 8, 16, 32, 64}) {
        const double acc = noisyAccuracy(cnn, zoo, dataset.classNames,
                                         n, 20.0, 100 + n);
        ta.row().cell(n).cell(acc, 4);
        if (n == 64)
            acc_k64 = acc;
    }
    util::printBanner(std::cout,
                      "Fig. 14 (left): accuracy vs kernels with +/-20us "
                      "noise");
    ta.printAscii(std::cout);

    // Sweep (b): 16 noisy kernels at +/-K us.
    util::Table tb({"noise magnitude (us)", "accuracy"});
    double acc_m45 = 0.0;
    for (std::size_t k : {5, 15, 25, 35, 45}) {
        const double acc = noisyAccuracy(cnn, zoo, dataset.classNames,
                                         16, static_cast<double>(k),
                                         200 + k);
        tb.row().cell(k).cell(acc, 4);
        if (k == 45)
            acc_m45 = acc;
    }
    util::printBanner(std::cout,
                      "Fig. 14 (right): accuracy vs noise magnitude "
                      "(16 kernels)");
    tb.printAscii(std::cout);

    const double clean_fresh =
        noisyAccuracy(cnn, zoo, dataset.classNames, 0, 0.0, 300);
    std::cout << "\nfresh-trace accuracy without noise: " << clean_fresh
              << "\nworst sweep point (64 kernels): " << acc_k64
              << ", (45 us): " << acc_m45
              << "  (decay should be graceful)\n";
    const bool shape_ok = clean_heldout > 0.8 &&
                          acc_k64 > clean_fresh - 0.4 &&
                          acc_m45 > clean_fresh - 0.4;
    return shape_ok ? 0 : 1;
}
