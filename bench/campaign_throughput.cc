/**
 * @file
 * Campaign throughput bench: drive the attack-as-a-service engine
 * over multi-hundred-victim session queues at three zoo sizes and
 * report victims/sec, time-to-clone percentiles, and fingerprint-
 * cache economics (the EXPERIMENTS.md campaign table reads from
 * exactly these rows).
 *
 * The mid-size point is the gated one: its CampaignReport is folded
 * into the snapshot as the campaign.* gauges bench_compare.py judges
 * (campaign.victims_per_sec is higher-is-better; the time-to-clone
 * p99 rides the usual latency gate).
 *
 * Shape checks (exit non-zero on failure):
 *  - every queue drains: sessions processed == sessions queued, with
 *    no abstentions on a clean (fault-free) campaign;
 *  - the skewed queue keeps the cache earning >= 50% hit rate;
 *  - identification accuracy over non-abstaining sessions >= 0.5;
 *  - at least one clone is extracted and at least one cached clone
 *    is reused;
 *  - the campaign watchdog stays healthy on every clean run;
 *  - two fresh drivers over the same queue under a pinned clock
 *    produce byte-identical CampaignReport JSON.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "core/campaign_report.hh"
#include "core/two_level.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "transformer/classifier.hh"
#include "util/table.hh"
#include "zoo/session.hh"
#include "zoo/zoo.hh"

using namespace decepticon;

namespace {

constexpr std::size_t kSessionsPerPoint = 240;
constexpr std::size_t kGatedZooSize = 6;

transformer::TransformerConfig
victimConfig()
{
    transformer::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 8;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 16;
    cfg.numClasses = 2;
    return cfg;
}

struct Point
{
    std::size_t zooSize = 0;
    core::CampaignReport report;
};

} // anonymous namespace

int
main()
{
    std::cout << "=== Campaign throughput (attack-as-a-service) ===\n";

    obs::MetricsRegistry bench_reg;
    const transformer::TransformerConfig cfg = victimConfig();

    util::Table table({"zoo size", "sessions", "victims/sec",
                       "hit rate", "accuracy", "p50 us", "p99 us",
                       "clones", "reuses"});

    bool ok = true;
    std::vector<Point> points;
    for (const std::size_t zoo_size : {std::size_t{4}, kGatedZooSize,
                                       std::size_t{8}}) {
        zoo::ModelZoo pool = zoo::ModelZoo::buildDefault(
            51, zoo_size, 0);
        core::TwoLevelOptions topts;
        topts.level1.datasetOptions.imagesPerModel = 3;
        topts.level1.datasetOptions.resolution = 32;
        topts.level1.cnnOptions.epochs = 20;
        topts.level1.seed = 2;
        core::TwoLevelAttack attack(topts);
        for (const auto *candidate : pool.pretrained())
            attack.addCandidate(
                *candidate,
                std::make_shared<transformer::TransformerClassifier>(
                    cfg, candidate->weightSeed));
        attack.prepare();

        zoo::SessionSamplerOptions sopts;
        sopts.sessions = kSessionsPerPoint;
        sopts.capturesPerVictim = 2;
        sopts.skewPopularity = 0.7;
        const auto sessions =
            zoo::sampleSessions(pool, sopts, 4242 + zoo_size);

        campaign::CampaignOptions copts;
        copts.batchSize = 32;
        copts.querySetSize = 12;
        copts.victimConfig = cfg;
        copts.seed = 7;

        // Arm the global registry so the driver's watchdog ticks at
        // every batch boundary and the per-stage timers accumulate.
        obs::ObsConfig ocfg;
        ocfg.metricsEnabled = true;
        obs::configure(ocfg);
        campaign::CampaignDriver driver(attack, copts);
        Point point;
        point.zooSize = zoo_size;
        point.report = driver.run(sessions);
        obs::shutdown();

        const core::CampaignReport &r = point.report;
        table.row()
            .cell(zoo_size)
            .cell(r.sessions)
            .cell(r.victimsPerSec(), 1)
            .cell(r.cacheHitRate(), 3)
            .cell(r.identificationAccuracy(), 3)
            .cell(r.timeToClone.quantile(0.50), 0)
            .cell(r.timeToClone.quantile(0.99), 0)
            .cell(r.clonesBuilt)
            .cell(r.cloneReuses);

        const std::string prefix =
            "campaign.zoo" + std::to_string(zoo_size);
        bench_reg.setGauge(prefix + ".victims_per_sec",
                           r.victimsPerSec());
        bench_reg.setGauge(prefix + ".cache.hit_rate",
                           r.cacheHitRate());
        bench_reg.setGauge(prefix + ".accuracy",
                           r.identificationAccuracy());
        bench_reg.setGauge(prefix + ".time_to_clone.p50_micros",
                           r.timeToClone.quantile(0.50));
        bench_reg.setGauge(prefix + ".time_to_clone.p99_micros",
                           r.timeToClone.quantile(0.99));
        bench_reg.setGauge(prefix + ".clones_built",
                           static_cast<double>(r.clonesBuilt));
        bench_reg.setGauge(prefix + ".clone_reuses",
                           static_cast<double>(r.cloneReuses));

        if (zoo_size == kGatedZooSize) {
            // The gated point publishes the canonical campaign.*
            // gauges (victims_per_sec, cache.hit_rate, time_to_clone
            // percentiles, watchdog verdict).
            r.toMetrics(bench_reg);

            // Determinism: two fresh drivers, same queue, pinned
            // clock, byte-identical reports at the configured lanes.
            obs::FakeClock clock;
            obs::setClockForTest(&clock);
            campaign::CampaignDriver da(attack, copts);
            campaign::CampaignDriver db(attack, copts);
            const std::string ja = da.run(sessions).toJson();
            const std::string jb = db.run(sessions).toJson();
            obs::setClockForTest(nullptr);
            if (ja != jb) {
                ok = false;
                std::cout << "FAIL: same queue, two drivers, "
                             "different CampaignReport JSON\n";
            }
        }

        if (r.sessions != sessions.size() || r.abstained != 0) {
            ok = false;
            std::cout << "FAIL: zoo " << zoo_size
                      << ": queue did not drain cleanly ("
                      << r.sessions << " processed, " << r.abstained
                      << " abstained)\n";
        }
        if (r.cacheHitRate() < 0.5) {
            ok = false;
            std::cout << "FAIL: zoo " << zoo_size
                      << ": cache hit rate " << r.cacheHitRate()
                      << " below 0.5 on a skewed queue\n";
        }
        if (r.identificationAccuracy() < 0.5) {
            ok = false;
            std::cout << "FAIL: zoo " << zoo_size << ": accuracy "
                      << r.identificationAccuracy() << " below 0.5\n";
        }
        if (r.clonesBuilt == 0 || r.cloneReuses == 0) {
            ok = false;
            std::cout << "FAIL: zoo " << zoo_size
                      << ": expected both fresh clones and cache "
                         "reuses (built "
                      << r.clonesBuilt << ", reused " << r.cloneReuses
                      << ")\n";
        }
        if (r.victimsPerSec() <= 0.0) {
            ok = false;
            std::cout << "FAIL: zoo " << zoo_size
                      << ": non-positive victims/sec\n";
        }
        if (!r.watchdog.healthy()) {
            ok = false;
            std::cout << "FAIL: zoo " << zoo_size
                      << ": watchdog flagged a clean campaign ("
                      << r.watchdog.findings.size() << " finding(s), "
                      << (r.watchdog.findings.empty()
                              ? ""
                              : r.watchdog.findings[0].message)
                      << ")\n";
        }
        points.push_back(std::move(point));
    }

    util::printBanner(std::cout,
                      "Campaign rollups vs zoo size (240 sessions, "
                      "popularity skew 0.7)");
    table.printAscii(std::cout);
    for (const Point &p : points)
        if (p.zooSize == kGatedZooSize)
            std::cout << p.report.summaryParagraph() << "\n";

    {
        std::ofstream out("BENCH_campaign_throughput.json");
        bench_reg.exportJson(out);
        out << "\n";
    }
    std::cout << "wrote BENCH_campaign_throughput.json\n";
    return ok ? 0 : 1;
}
