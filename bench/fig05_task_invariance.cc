/**
 * @file
 * Figure 5 reproduction: one pre-trained model fine-tuned for nine
 * different downstream tasks (the paper uses the GLUE suite); the
 * average pairwise per-layer weight distance across the nine models is
 * near zero for every layer except the task-specific last layer.
 *
 * Uses real gradient-descent fine-tuning of a small transformer from
 * one shared backbone, plus the statistical simulator at BERT-base
 * shape for the paper's scale.
 */

#include <cmath>
#include <iostream>
#include <memory>

#include "bench/workloads.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"

using namespace decepticon;

int
main()
{
    constexpr std::size_t kTasks = 9;

    // ---------------------------------------------------------------
    // Real-training path: nine fine-tunes of one small backbone.
    // ---------------------------------------------------------------
    const auto cfg = bench::benchConfig(4);
    auto pre = bench::pretrainBackbone(cfg, 31);

    std::vector<std::unique_ptr<transformer::TransformerClassifier>>
        models;
    for (std::size_t t = 0; t < kTasks; ++t) {
        transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen,
                                     1000 + t, 4.0);
        models.push_back(bench::fineTuneFrom(
            *pre, task, task.sample(120, 2000 + t), 3000 + t,
            bench::fineTuneOptions()));
    }

    // Average pairwise per-layer mean |diff| across the nine models.
    const std::size_t layers = cfg.numLayers;
    std::vector<double> layer_diff(layers, 0.0);
    double head_diff = 0.0;
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < models.size(); ++a) {
        for (std::size_t b = a + 1; b < models.size(); ++b) {
            ++pairs;
            for (std::size_t l = 0; l < layers; ++l) {
                auto pa = models[a]->encoderParams(l);
                auto pb = models[b]->encoderParams(l);
                double s = 0.0;
                std::size_t n = 0;
                for (std::size_t p = 0; p < pa.size(); ++p) {
                    for (std::size_t i = 0; i < pa[p]->size(); ++i) {
                        s += std::fabs(pa[p]->value[i] -
                                       pb[p]->value[i]);
                        ++n;
                    }
                }
                layer_diff[l] += s / static_cast<double>(n);
            }
            auto ha = models[a]->headParams();
            auto hb = models[b]->headParams();
            double s = 0.0;
            std::size_t n = 0;
            for (std::size_t p = 0; p < ha.size(); ++p) {
                for (std::size_t i = 0; i < ha[p]->size(); ++i) {
                    s += std::fabs(ha[p]->value[i] - hb[p]->value[i]);
                    ++n;
                }
            }
            head_diff += s / static_cast<double>(n);
        }
    }
    for (auto &d : layer_diff)
        d /= static_cast<double>(pairs);
    head_diff /= static_cast<double>(pairs);

    util::Table real_t({"layer", "avg pairwise |diff| (9 tasks)"});
    for (std::size_t l = 0; l < layers; ++l)
        real_t.row().cell("encoder" + std::to_string(l))
            .cell(layer_diff[l], 6);
    real_t.row().cell("task head (last layer)").cell(head_diff, 6);
    util::printBanner(std::cout,
                      "Fig. 5 (real training, 9 tasks, one backbone)");
    real_t.printAscii(std::cout);

    // ---------------------------------------------------------------
    // Statistical path at BERT-base shape.
    // ---------------------------------------------------------------
    gpusim::ArchParams arch = bench::bertBaseArch();
    const auto pre_ws = zoo::WeightStore::makePretrained(arch, 7, 8000);
    zoo::FineTuneOptions fopts;
    std::vector<zoo::WeightStore> stores;
    for (std::size_t t = 0; t < kTasks; ++t)
        stores.push_back(
            zoo::FineTuneSimulator::fineTune(pre_ws, fopts, 100 + t));

    std::vector<double> sim_layer(arch.numLayers, 0.0);
    double sim_head = 0.0;
    std::size_t sim_pairs = 0;
    for (std::size_t a = 0; a < stores.size(); ++a) {
        for (std::size_t b = a + 1; b < stores.size(); ++b) {
            ++sim_pairs;
            const auto diffs = stores[a].perLayerMeanAbsDiff(stores[b]);
            for (std::size_t l = 0; l < arch.numLayers; ++l)
                sim_layer[l] += diffs[l];
            sim_head += diffs.back();
        }
    }
    util::Table sim_t({"layer", "avg pairwise |diff| (9 tasks)"});
    for (std::size_t l = 0; l < arch.numLayers; ++l)
        sim_t.row().cell("encoder" + std::to_string(l))
            .cell(sim_layer[l] / static_cast<double>(sim_pairs), 6);
    sim_t.row().cell("task head (last layer)")
        .cell(sim_head / static_cast<double>(sim_pairs), 6);
    util::printBanner(std::cout,
                      "Fig. 5 (simulator, BERT-base shape)");
    sim_t.printAscii(std::cout);

    // Acceptance: the head differs far more than any encoder layer.
    double max_layer = 0.0;
    for (double d : layer_diff)
        max_layer = std::max(max_layer, d);
    std::cout << "\nhead/body diff ratio (real): "
              << head_diff / max_layer << "  (paper: head >> body)\n";
    return head_diff > 3.0 * max_layer ? 0 : 1;
}
