/**
 * @file
 * Shared workload builders for the experiment benches: real
 * pre-training / fine-tuning of small transformers and the standard
 * architecture shapes used across figures. Every builder is seeded so
 * bench output is reproducible run to run.
 */

#ifndef DECEPTICON_BENCH_WORKLOADS_HH
#define DECEPTICON_BENCH_WORKLOADS_HH

#include <cmath>
#include <cstdint>
#include <memory>

#include "gpusim/trace_generator.hh"
#include "transformer/classifier.hh"
#include "transformer/task.hh"
#include "transformer/trainer.hh"

namespace decepticon::bench {

/** The standard small-model shape used by the training benches. */
inline transformer::TransformerConfig
benchConfig(std::size_t layers = 4, std::size_t num_classes = 2)
{
    transformer::TransformerConfig cfg;
    cfg.vocab = 24;
    cfg.maxSeqLen = 12;
    cfg.hidden = 16;
    cfg.numLayers = layers;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = num_classes;
    return cfg;
}

/** A pre-trained backbone: real training on a synthetic task. */
inline std::unique_ptr<transformer::TransformerClassifier>
pretrainBackbone(const transformer::TransformerConfig &cfg,
                 std::uint64_t seed, std::size_t samples = 160,
                 std::size_t epochs = 4)
{
    transformer::TransformerConfig pre_cfg = cfg;
    pre_cfg.numClasses = 4; // generic multi-class pre-training task
    auto model = std::make_unique<transformer::TransformerClassifier>(
        pre_cfg, seed);
    transformer::MarkovTask task(cfg.vocab, 4, cfg.maxSeqLen,
                                 seed ^ 0x9e37ULL, 4.0);
    transformer::TrainOptions opts;
    opts.epochs = epochs;
    opts.lr = 2e-3f;
    transformer::Trainer::train(*model, task.sample(samples, seed + 1),
                                opts);
    return model;
}

/** The paper's fine-tuning regime: fresh head, small backbone rate. */
inline transformer::TrainOptions
fineTuneOptions(std::size_t epochs = 3)
{
    transformer::TrainOptions opts;
    opts.epochs = epochs;
    opts.lr = 2e-4f;
    opts.headLrMultiplier = 30.0f;
    return opts;
}

/** Fine-tune a copy of a backbone for a downstream task. */
inline std::unique_ptr<transformer::TransformerClassifier>
fineTuneFrom(const transformer::TransformerClassifier &pretrained,
             const transformer::MarkovTask &task,
             const transformer::Dataset &data, std::uint64_t head_seed,
             const transformer::TrainOptions &opts)
{
    auto model = std::make_unique<transformer::TransformerClassifier>(
        pretrained);
    model->resetHead(task.numClasses(), head_seed);
    transformer::Trainer::fineTune(*model, data, opts);
    return model;
}

/** Full-scale architecture shapes for the trace-level figures. */
inline gpusim::ArchParams
bertBaseArch()
{
    gpusim::ArchParams arch;
    arch.numLayers = 12;
    arch.hidden = 768;
    arch.numHeads = 12;
    arch.seqLen = 128;
    return arch;
}

inline gpusim::ArchParams
bertLargeArch()
{
    gpusim::ArchParams arch;
    arch.numLayers = 24;
    arch.hidden = 1024;
    arch.numHeads = 16;
    arch.seqLen = 128;
    return arch;
}

/** Mean absolute per-parameter difference between two models. */
inline double
meanAbsParamDiff(transformer::TransformerClassifier &a,
                 transformer::TransformerClassifier &b)
{
    auto pa = a.params();
    auto pb = b.params();
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t p = 0; p < pa.size(); ++p) {
        for (std::size_t i = 0; i < pa[p]->size(); ++i) {
            sum += std::fabs(pa[p]->value[i] - pb[p]->value[i]);
            ++n;
        }
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

} // namespace decepticon::bench

#endif // DECEPTICON_BENCH_WORKLOADS_HH
