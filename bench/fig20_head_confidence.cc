/**
 * @file
 * Figure 20 reproduction: attention-head confidence correlation. The
 * per-(layer, head) confidence of a pre-trained model is highly
 * correlated with that of its fine-tuned descendants — for different
 * downstream tasks — and markedly less correlated with models from a
 * different pre-trained lineage. This is what lets the attacker
 * predict which heads a confidence-based pruner removed.
 */

#include <iostream>

#include "attack/head_pruning.hh"
#include "bench/workloads.hh"
#include "transformer/confidence.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    transformer::TransformerConfig cfg = bench::benchConfig(4);
    cfg.numHeads = 4;
    cfg.hidden = 16;

    auto pre_x = bench::pretrainBackbone(cfg, 201, 200, 4);
    auto pre_y = bench::pretrainBackbone(cfg, 202, 200, 4);

    // Two fine-tuned descendants of X, for different tasks.
    transformer::MarkovTask task1(cfg.vocab, 2, cfg.maxSeqLen, 2010, 4.0);
    transformer::MarkovTask task2(cfg.vocab, 3, cfg.maxSeqLen, 2020, 4.0);
    auto ft1 = bench::fineTuneFrom(*pre_x, task1, task1.sample(120, 1),
                                   11, bench::fineTuneOptions());
    auto ft2 = bench::fineTuneFrom(*pre_x, task2, task2.sample(120, 2),
                                   12, bench::fineTuneOptions());

    transformer::MarkovTask probe(cfg.vocab, 4, cfg.maxSeqLen, 2000, 4.0);
    const auto samples = probe.sample(24, 3).examples;

    util::Table t({"pair", "confidence Pearson r"});
    const double x_ft1 =
        attack::confidenceCorrelation(*pre_x, *ft1, samples);
    const double x_ft2 =
        attack::confidenceCorrelation(*pre_x, *ft2, samples);
    const double y_ft1 =
        attack::confidenceCorrelation(*pre_y, *ft1, samples);
    const double y_ft2 =
        attack::confidenceCorrelation(*pre_y, *ft2, samples);
    t.row().cell("(a) pre-X vs fine-tuned task1 (same lineage)")
        .cell(x_ft1, 4);
    t.row().cell("(a) pre-X vs fine-tuned task2 (same lineage)")
        .cell(x_ft2, 4);
    t.row().cell("(b) pre-Y vs fine-tuned task1 (cross lineage)")
        .cell(y_ft1, 4);
    t.row().cell("(b) pre-Y vs fine-tuned task2 (cross lineage)")
        .cell(y_ft2, 4);

    util::printBanner(std::cout,
                      "Fig. 20: head-confidence correlation (same vs "
                      "different pre-trained model)");
    t.printAscii(std::cout);

    // Per-layer detail for the same-lineage pair (heat-map values).
    const auto conf_pre =
        transformer::headConfidence(*pre_x, samples);
    const auto conf_ft =
        transformer::headConfidence(*ft1, samples);
    util::Table detail({"layer", "head", "pre-X confidence",
                        "fine-tuned confidence"});
    for (std::size_t l = 0; l < conf_pre.size(); ++l)
        for (std::size_t h = 0; h < conf_pre[l].size(); ++h)
            detail.row().cell(l).cell(h).cell(conf_pre[l][h], 4)
                .cell(conf_ft[l][h], 4);
    util::printBanner(std::cout,
                      "Fig. 20 detail: per-head confidences "
                      "(same lineage)");
    detail.printAscii(std::cout);

    const double same_min = std::min(x_ft1, x_ft2);
    const double cross_max = std::max(y_ft1, y_ft2);
    std::cout << "\nmin same-lineage r: " << same_min
              << "; max cross-lineage r: " << cross_max
              << "  (paper: same-lineage heads highly correlated)\n";
    return same_min > 0.85 && same_min > cross_max ? 0 : 1;
}
