/**
 * @file
 * Table 2 reproduction: the DeepSniffer-style kernel-sequence
 * predictor, trained on traces from its own source, collapses on
 * victims released by other sources. Rows mirror the paper:
 * in-distribution (low LER), a PyTorch model from another developer,
 * an NVIDIA PyTorch release, a Google TensorFlow release, and an
 * Amazon MXNet release — with LER well beyond 1 (unusable) for the
 * foreign software stacks.
 */

#include <iostream>

#include "bench/workloads.hh"
#include "fingerprint/seq_predictor.hh"
#include "gpusim/trace_generator.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    // The baseline attacker profiles models he controls: several
    // releases (dialects) from the DeepSniffer-style source.
    std::vector<gpusim::KernelTrace> profile;
    for (int d = 0; d < 5; ++d) {
        gpusim::SoftwareSignature sig;
        sig.kernelDialect = d;
        profile.push_back(gpusim::TraceGenerator(sig).generate(
            bench::bertBaseArch(), 1));
    }
    fingerprint::KernelSequencePredictor predictor;
    predictor.train(profile);

    struct Victim
    {
        const char *label;
        gpusim::SoftwareSignature sig;
    };
    std::vector<Victim> victims;
    {
        gpusim::SoftwareSignature in_dist;
        in_dist.kernelDialect = 2; // seen during profiling
        victims.push_back({"DeepSniffer original (in-distribution)",
                           in_dist});

        gpusim::SoftwareSignature pt_other;
        pt_other.kernelDialect = 30; // unseen release, same stack
        victims.push_back({"DeepSniffer PyTorch model (new release)",
                           pt_other});

        gpusim::SoftwareSignature nvidia;
        nvidia.developer = gpusim::Developer::Nvidia;
        nvidia.useTensorCores = true;
        nvidia.kernelDialect = 31;
        victims.push_back({"NVIDIA PyTorch model", nvidia});

        gpusim::SoftwareSignature google;
        google.framework = gpusim::Framework::TensorFlow;
        google.developer = gpusim::Developer::Google;
        google.useXla = true;
        google.kernelDialect = 32;
        victims.push_back({"Google TensorFlow model", google});

        gpusim::SoftwareSignature amazon;
        amazon.framework = gpusim::Framework::Mxnet;
        amazon.developer = gpusim::Developer::Amazon;
        amazon.kernelDialect = 33;
        victims.push_back({"Amazon MXNet model", amazon});
    }

    util::Table t({"victim", "LER", "kernel seq length",
                   "unique kernels"});
    std::vector<double> lers;
    for (const auto &v : victims) {
        const auto trace = gpusim::TraceGenerator(v.sig).generate(
            bench::bertBaseArch(), 7);
        const double ler = predictor.layerErrorRate(trace);
        lers.push_back(ler);
        t.row()
            .cell(v.label)
            .cell(ler, 3)
            .cell(trace.records.size())
            .cell(trace.uniqueKernelCount());
    }

    util::printBanner(std::cout,
                      "Table 2: DeepSniffer-style layer prediction "
                      "error rate across sources");
    t.printAscii(std::cout);
    std::cout << "\npredictor kernel vocabulary: "
              << predictor.vocabularySize() << " names\n"
              << "(paper: 0.09 in-distribution; 0.57-6.8 elsewhere — "
                 "LER > 1 means not usable)\n";

    const bool shape_ok = lers[0] < 0.2 &&            // in-distribution
                          lers[3] > 1.0 && lers[4] > 1.0; // TF, MXNet
    return shape_ok ? 0 : 1;
}
