/**
 * @file
 * Figure 6 reproduction: average weight change between consecutive
 * fine-tuning epochs over 30 epochs, for an encoder layer (the paper
 * shows encoder 22 of BERT-large) and for the task-specific output
 * layer. Expected shape: the encoder's inter-epoch gap rises until
 * around epoch 9 (to ~0.0015) then decays (to below ~0.0002 by epoch
 * 30); the output layer's cumulative change saturates exponentially.
 */

#include <cmath>
#include <iostream>

#include "bench/workloads.hh"
#include "util/table.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"

using namespace decepticon;

int
main()
{
    gpusim::ArchParams arch = bench::bertLargeArch();
    const auto pre = zoo::WeightStore::makePretrained(arch, 9, 8000);
    zoo::FineTuneOptions fopts;
    fopts.epochs = 30;
    fopts.outlierProb = 0.0; // the figure shows the bulk behaviour
    const auto traj =
        zoo::FineTuneSimulator::fineTuneTrajectory(pre, fopts, 10);

    constexpr std::size_t kLayer = 22; // the paper's example encoder
    util::Table t({"epoch", "encoder22 inter-epoch |dW|",
                   "head inter-epoch |dW|", "head cumulative |dW|"});

    double peak_gap = 0.0;
    std::size_t peak_epoch = 0;
    double last_gap = 0.0;
    std::vector<double> head_start = {};
    for (std::size_t e = 1; e < traj.size(); ++e) {
        double enc_gap = 0.0;
        const auto &cur = traj[e].layers[kLayer].w;
        const auto &prev = traj[e - 1].layers[kLayer].w;
        for (std::size_t i = 0; i < cur.size(); ++i)
            enc_gap += std::fabs(static_cast<double>(cur[i]) - prev[i]);
        enc_gap /= static_cast<double>(cur.size());

        double head_gap = 0.0, head_cum = 0.0;
        for (std::size_t i = 0; i < traj[e].head.w.size(); ++i) {
            head_gap += std::fabs(
                static_cast<double>(traj[e].head.w[i]) -
                traj[e - 1].head.w[i]);
            head_cum += std::fabs(
                static_cast<double>(traj[e].head.w[i]) -
                traj[0].head.w[i]);
        }
        head_gap /= static_cast<double>(traj[e].head.w.size());
        head_cum /= static_cast<double>(traj[e].head.w.size());

        t.row().cell(e + 1).cell(enc_gap, 6).cell(head_gap, 6)
            .cell(head_cum, 5);
        if (enc_gap > peak_gap) {
            peak_gap = enc_gap;
            peak_epoch = e + 1;
        }
        last_gap = enc_gap;
    }

    util::printBanner(std::cout,
                      "Fig. 6: weight updates across 30 fine-tuning "
                      "epochs (BERT-large shape, encoder 22)");
    t.printAscii(std::cout);

    std::cout << "\npeak inter-epoch gap " << peak_gap << " at epoch "
              << peak_epoch << "; final gap " << last_gap
              << "  (paper: peak ~0.0015 near epoch 9, tail < 0.0002)\n";
    const bool shape_ok =
        peak_epoch >= 6 && peak_epoch <= 12 && last_gap < peak_gap / 3.0;
    return shape_ok ? 0 : 1;
}
