/**
 * @file
 * Figure 21 reproduction: head pruning leaves a timing signature. As
 * more attention heads are pruned, the short attention kernels near
 * the bottom of the time-series plot execute faster; comparing the
 * victim's short-kernel durations against a dense reference reveals
 * exactly how many heads were pruned. Combined with confidence
 * ranking on the pre-trained model (Fig. 20), the attacker recovers
 * which heads are gone.
 */

#include <algorithm>
#include <iostream>

#include "attack/head_pruning.hh"
#include "bench/workloads.hh"
#include "gpusim/trace_generator.hh"
#include "transformer/confidence.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    gpusim::SoftwareSignature sig;
    sig.kernelDialect = 21;
    const gpusim::TraceGenerator gen(sig);
    const auto dense = bench::bertBaseArch();

    util::Table t({"pruned heads", "mean short-kernel us",
                   "total time ms", "estimated pruned"});
    const auto ref = gen.generate(dense, 1);
    bool estimates_ok = true;
    for (std::size_t pruned : {0u, 2u, 4u, 8u}) {
        gpusim::ArchParams arch = dense;
        arch.prunedHeads = pruned;
        const auto trace = gen.generate(arch, 2 + pruned);
        const std::size_t est = attack::estimatePrunedHeadCount(
            trace, ref, dense.numHeads);
        estimates_ok &= est == pruned;
        t.row()
            .cell(pruned)
            .cell(attack::meanShortKernelDuration(trace), 2)
            .cell(trace.totalTime() / 1000.0, 2)
            .cell(est);
    }
    util::printBanner(std::cout,
                      "Fig. 21: execution-time impact of head pruning "
                      "(BERT-base shape)");
    t.printAscii(std::cout);

    // Locating *which* heads were pruned: the victim pruned its
    // lowest-confidence heads; the attacker ranks heads on the
    // pre-trained model instead (confidence correlates, Fig. 20).
    transformer::TransformerConfig cfg = bench::benchConfig(4);
    cfg.numHeads = 4;
    auto pre = bench::pretrainBackbone(cfg, 211, 200, 4);
    transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen, 2110, 4.0);
    auto victim = bench::fineTuneFrom(*pre, task, task.sample(120, 1),
                                      13, bench::fineTuneOptions());

    transformer::MarkovTask probe(cfg.vocab, 4, cfg.maxSeqLen, 2100, 4.0);
    const auto samples = probe.sample(24, 2).examples;

    // The victim prunes its 3 lowest-confidence heads.
    const auto victim_rank =
        attack::predictPrunedHeads(*victim, samples, 3);
    // The attacker predicts them from the pre-trained model.
    const auto attacker_guess =
        attack::predictPrunedHeads(*pre, samples, 3);

    std::size_t hits = 0;
    for (const auto &head : attacker_guess) {
        if (std::find(victim_rank.begin(), victim_rank.end(), head) !=
            victim_rank.end())
            ++hits;
    }
    std::cout << "\npruned-head location: attacker predicted " << hits
              << "/3 of the victim's pruned heads from the pre-trained "
                 "model alone\n";

    return estimates_ok && hits >= 2 ? 0 : 1;
}
