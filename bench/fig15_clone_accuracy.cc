/**
 * @file
 * Figure 15 reproduction: quality of the extracted clone. A victim is
 * fine-tuned from a pre-trained backbone; Decepticon's level-2
 * extraction (full-head read + selective encoder extraction, last
 * layer first) builds a clone whose dev-set accuracy/F1 land within a
 * fraction of a point of the victim's and whose predictions match the
 * victim's on ~94% of inputs.
 */

#include <iostream>

#include "bench/workloads.hh"
#include "extraction/cloner.hh"
#include "nn/param.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    const auto cfg = bench::benchConfig(4);
    auto pre = bench::pretrainBackbone(cfg, 151, 200, 5);

    transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen, 1500, 4.0);
    const auto train = task.sample(200, 1);
    const auto dev = task.sample(200, 2);
    auto victim = bench::fineTuneFrom(*pre, task, train, 7,
                                      bench::fineTuneOptions());
    const auto victim_eval = transformer::Trainer::evaluate(*victim, dev);

    extraction::ClonerOptions copts;
    copts.policy.baseDist = 0.02;
    copts.policy.significance = 0.0001;
    copts.policy.maxBitsPerWeight = 8;
    copts.agreementTarget = 0.995;
    auto result = extraction::ModelCloner::extract(
        *victim, *pre, task.sample(120, 3).examples, copts);

    const auto clone_eval =
        transformer::Trainer::evaluate(*result.clone, dev);
    std::vector<int> victim_preds;
    for (const auto &ex : dev.examples)
        victim_preds.push_back(victim->predict(ex.tokens));
    const double matched = transformer::Trainer::agreement(
        clone_eval.predictions, victim_preds);

    // Baseline: the raw pre-trained model with a random head cannot
    // serve the downstream task (motivation for extraction).
    transformer::TransformerClassifier raw(*pre);
    raw.resetHead(2, 9);
    const auto raw_eval = transformer::Trainer::evaluate(raw, dev);

    util::Table t({"model", "accuracy", "F1", "matched preds"});
    t.row().cell("victim (fine-tuned)").cell(victim_eval.accuracy, 4)
        .cell(victim_eval.macroF1, 4).cell("1.0000");
    t.row().cell("Decepticon clone").cell(clone_eval.accuracy, 4)
        .cell(clone_eval.macroF1, 4).cell(matched, 4);
    t.row().cell("pre-trained + random head").cell(raw_eval.accuracy, 4)
        .cell(raw_eval.macroF1, 4).cell("-");

    util::printBanner(std::cout,
                      "Fig. 15: victim vs extracted clone (dev set, " +
                          std::to_string(dev.size()) + " inputs)");
    t.printAscii(std::cout);

    const std::size_t full_bits =
        32 * nn::totalParamCount(victim->params());
    std::cout << "\nbits read: " << result.probeStats.bitsRead
              << " of " << full_bits << " ("
              << 100.0 * static_cast<double>(result.probeStats.bitsRead) /
                     static_cast<double>(full_bits)
              << "% of a full-weight attack)\n"
              << "accuracy gap: "
              << victim_eval.accuracy - clone_eval.accuracy
              << ", F1 gap: " << victim_eval.macroF1 - clone_eval.macroF1
              << "  (paper: ~0.002 gap, 94% matched)\n";

    const bool shape_ok =
        matched >= 0.9 &&
        std::abs(victim_eval.accuracy - clone_eval.accuracy) <= 0.05;
    return shape_ok ? 0 : 1;
}
