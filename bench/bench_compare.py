#!/usr/bin/env python3
"""Compare two BENCH_perf_microbench.json snapshots for regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.15]
    bench_compare.py --lint-report BASELINE.json CANDIDATE.json

Benchmark mode: every gauge named ``bench.*.real_time`` present in
BOTH snapshots is compared, and so is every per-stage latency gauge
ending ``.p99_micros`` (exported by the obs v2 StageTimer
histograms); a candidate more than ``threshold`` (default 15%)
slower than the baseline is a regression and the script exits 1 —
the verify pipeline gates on that. Throughput gauges ending
``.victims_per_sec`` (the campaign engine) or ``.lookups_per_sec``
(the fingerprint index) gate in the opposite direction: a candidate
more than ``threshold`` *below* the baseline fails. Wall-clock gauges only: cpu_time
aggregates scheduler lanes and misreports threaded benchmarks.
Gauges present in only one snapshot (new or retired benchmarks) are
reported but never fail the run, so adding a benchmark does not
require regenerating the baseline in the same change.

Lint mode (``--lint-report``): diff two decepticon-lint JSON reports
(the committed ``tools/lint/lint_baseline.json`` vs a fresh
``decepticon-lint --json`` run). Any unsuppressed violation fails,
and so does any suppression not present in the baseline — new
suppressions must land by updating the committed baseline, which
makes them a reviewable diff instead of a silent drive-by. Retired
suppressions are reported as cleanups and pass.
"""

import argparse
import json
import sys


def lint_suppression_key(entry):
    """Identity of a suppression for baseline diffing: file + rule +
    justification. Line numbers are deliberately excluded so
    unrelated edits above a suppressed line do not churn the
    baseline."""
    return (entry.get("file", ""), entry.get("rule", ""),
            entry.get("justification", ""))


def compare_lint_reports(baseline_path, candidate_path):
    with open(baseline_path, "r", encoding="utf-8") as f:
        base = json.load(f)
    with open(candidate_path, "r", encoding="utf-8") as f:
        cand = json.load(f)
    for report, path in ((base, baseline_path), (cand, candidate_path)):
        if report.get("tool") != "decepticon-lint":
            print(f"error: {path} is not a decepticon-lint report")
            return 2

    failed = False
    violations = cand.get("violations", [])
    if violations:
        failed = True
        print(f"FAIL: {len(violations)} unsuppressed violation(s):")
        for v in violations:
            print(f"  {v['file']}:{v['line']}: [{v['rule']}] "
                  f"{v['message']}")

    base_sup = {lint_suppression_key(s) for s in base.get("suppressed", [])}
    cand_entries = cand.get("suppressed", [])
    new = [s for s in cand_entries
           if lint_suppression_key(s) not in base_sup]
    if new:
        failed = True
        print(f"FAIL: {len(new)} suppression(s) not in the committed "
              f"baseline ({baseline_path}):")
        for s in new:
            print(f"  {s['file']}:{s['line']}: [{s['rule']}] "
                  f"justification: {s.get('justification', '')!r}")
        print("  If intentional, regenerate the baseline "
              "(decepticon-lint --json) and commit it so the new "
              "suppression is visible in review.")

    cand_sup = {lint_suppression_key(s) for s in cand_entries}
    retired = sorted(base_sup - cand_sup)
    for file_, rule, _ in retired:
        print(f"note: suppression retired in {file_} [{rule}] "
              f"(baseline can be regenerated)")

    if failed:
        return 1
    print(f"OK: 0 violations, {len(cand_entries)} suppression(s), "
          f"all in baseline")
    return 0


def gauge_direction(name):
    """Gating direction of a gauge, or None if not gated.

    "lower": benchmark wall clocks plus per-stage p99 latencies (one
    log-histogram bucket is ~9%, so a >15% p99 move is at least two
    buckets — real, not quantization noise). "higher": throughput
    gauges (campaign victims/sec, fingerprint-index lookups/sec),
    where a drop below the threshold is the regression."""
    if name.startswith("bench.") and name.endswith(".real_time"):
        return "lower"
    if name.endswith(".p99_micros"):
        return "lower"
    if name.endswith(".victims_per_sec"):
        return "higher"
    if name.endswith(".lookups_per_sec"):
        return "higher"
    return None


def real_time_gauges(path):
    with open(path, "r", encoding="utf-8") as f:
        snapshot = json.load(f)
    gauges = snapshot.get("gauges", {})
    return {
        name: value
        for name, value in gauges.items()
        if gauge_direction(name) is not None
        and isinstance(value, (int, float)) and value > 0
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("candidate", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed slowdown fraction before failing (default 0.15)")
    parser.add_argument(
        "--lint-report", action="store_true",
        help="treat the inputs as decepticon-lint JSON reports and "
             "diff suppressions against the committed baseline")
    args = parser.parse_args()

    if args.lint_report:
        return compare_lint_reports(args.baseline, args.candidate)

    base = real_time_gauges(args.baseline)
    cand = real_time_gauges(args.candidate)
    if not base:
        print(f"error: no bench.*.real_time gauges in {args.baseline}")
        return 2
    if not cand:
        print(f"error: no bench.*.real_time gauges in {args.candidate}")
        return 2

    shared = sorted(set(base) & set(cand))
    regressions = []
    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}"
          f"  {'ratio':>7}")
    for name in shared:
        ratio = cand[name] / base[name]
        flag = ""
        if gauge_direction(name) == "higher":
            regressed = ratio < 1.0 - args.threshold
        else:
            regressed = ratio > 1.0 + args.threshold
        if regressed:
            regressions.append((name, ratio))
            flag = "  REGRESSION"
        print(f"{name:<{width}}  {base[name]:>12.0f}  {cand[name]:>12.0f}"
              f"  {ratio:>6.2f}x{flag}")

    for name in sorted(set(cand) - set(base)):
        print(f"{name}: new benchmark, no baseline (not compared)")
    for name in sorted(set(base) - set(cand)):
        print(f"{name}: missing from candidate (not compared)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} real_time regression(s) "
              f"worse than {args.threshold:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline")
        return 1
    print(f"\nOK: {len(shared)} gauge(s) within {args.threshold:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
