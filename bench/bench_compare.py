#!/usr/bin/env python3
"""Compare two BENCH_perf_microbench.json snapshots for regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.15]

Every gauge named ``bench.*.real_time`` present in BOTH snapshots is
compared; a candidate more than ``threshold`` (default 15%) slower
than the baseline is a regression and the script exits 1 — the verify
pipeline gates on that. Wall-clock gauges only: cpu_time aggregates
scheduler lanes and misreports threaded benchmarks.

Gauges present in only one snapshot (new or retired benchmarks) are
reported but never fail the run, so adding a benchmark does not
require regenerating the baseline in the same change.
"""

import argparse
import json
import sys


def real_time_gauges(path):
    with open(path, "r", encoding="utf-8") as f:
        snapshot = json.load(f)
    gauges = snapshot.get("gauges", {})
    return {
        name: value
        for name, value in gauges.items()
        if name.startswith("bench.") and name.endswith(".real_time")
        and isinstance(value, (int, float)) and value > 0
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("candidate", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed slowdown fraction before failing (default 0.15)")
    args = parser.parse_args()

    base = real_time_gauges(args.baseline)
    cand = real_time_gauges(args.candidate)
    if not base:
        print(f"error: no bench.*.real_time gauges in {args.baseline}")
        return 2
    if not cand:
        print(f"error: no bench.*.real_time gauges in {args.candidate}")
        return 2

    shared = sorted(set(base) & set(cand))
    regressions = []
    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}"
          f"  {'ratio':>7}")
    for name in shared:
        ratio = cand[name] / base[name]
        flag = ""
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))
            flag = "  REGRESSION"
        print(f"{name:<{width}}  {base[name]:>12.0f}  {cand[name]:>12.0f}"
              f"  {ratio:>6.2f}x{flag}")

    for name in sorted(set(cand) - set(base)):
        print(f"{name}: new benchmark, no baseline (not compared)")
    for name in sorted(set(base) - set(cand)):
        print(f"{name}: missing from candidate (not compared)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} real_time regression(s) "
              f"worse than {args.threshold:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline")
        return 1
    print(f"\nOK: {len(shared)} gauge(s) within {args.threshold:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
