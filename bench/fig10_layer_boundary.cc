/**
 * @file
 * Figure 10 reproduction: layer boundary identification. The repeated
 * kernel group in a trace is detected automatically; its repetition
 * count equals the encoder count (12 for BERT-base-shaped, 24 for
 * BERT-large-shaped) and the peak kernel duration inside a group
 * tracks the hidden size (DeBERTa-xsmall 384 < GPT-2 768 < BERT-large
 * 1024).
 */

#include <iostream>

#include "fingerprint/boundary.hh"
#include "gpusim/trace_generator.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    struct ModelShape
    {
        const char *label;
        std::size_t layers;
        std::size_t hidden;
    };
    const ModelShape shapes[] = {
        {"DeBERTa-xsmall (12 x 384)", 12, 384},
        {"GPT-2 (12 x 768)", 12, 768},
        {"BERT-base (12 x 768)", 12, 768},
        {"BERT-large (24 x 1024)", 24, 1024},
        {"BERT-tiny (2 x 128)", 2, 128},
        {"BERT-medium (8 x 512)", 8, 512},
    };

    util::Table t({"model", "true layers", "detected layers",
                   "group size", "peak kernel us"});
    bool all_correct = true;
    double peak_xsmall = 0.0, peak_large = 0.0;
    int dialect = 0;
    for (const auto &s : shapes) {
        gpusim::SoftwareSignature sig;
        sig.kernelDialect = 40 + dialect++;
        gpusim::ArchParams arch;
        arch.numLayers = s.layers;
        arch.hidden = s.hidden;
        arch.numHeads = std::max<std::size_t>(2, s.hidden / 64);
        arch.seqLen = 128;

        const auto trace =
            gpusim::TraceGenerator(sig).generate(arch, 3);
        const auto res = fingerprint::detectLayerBoundaries(trace);
        t.row()
            .cell(s.label)
            .cell(s.layers)
            .cell(res.repetitions)
            .cell(res.period)
            .cell(res.peakDurationUs, 1);
        all_correct &= res.repetitions == s.layers;
        if (s.hidden == 384)
            peak_xsmall = res.peakDurationUs;
        if (s.hidden == 1024)
            peak_large = res.peakDurationUs;
    }

    util::printBanner(std::cout,
                      "Fig. 10: layer boundary identification");
    t.printAscii(std::cout);
    std::cout << "\nall layer counts detected correctly: "
              << (all_correct ? "yes" : "NO")
              << "\npeak duration xsmall vs large: " << peak_xsmall
              << " vs " << peak_large
              << " us (peak tracks hidden size)\n";
    return all_correct && peak_large > peak_xsmall ? 0 : 1;
}
