/**
 * @file
 * Figure 8 reproduction: models released by the same source show
 * highly consistent execution statistics even when fine-tuned for
 * different tasks — the fingerprint is inherited from the pre-trained
 * model. We compare fingerprint images of several fine-tuned
 * descendants of one lineage against each other and against
 * descendants of other lineages.
 */

#include <iostream>

#include "fingerprint/dataset.hh"
#include "trace/image.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "zoo/zoo.hh"

using namespace decepticon;

int
main()
{
    const auto zoo = zoo::ModelZoo::buildDefault(8, 8, 40);

    // Group fine-tuned models by lineage; pick the largest family.
    const auto lineages = zoo.lineageNames();
    std::string best;
    std::size_t best_count = 0;
    for (const auto &name : lineages) {
        std::size_t count = 0;
        for (const auto *ft : zoo.finetuned())
            count += ft->pretrainedName == name ? 1 : 0;
        if (count > best_count) {
            best_count = count;
            best = name;
        }
    }

    std::vector<tensor::Tensor> family, strangers;
    std::vector<std::string> family_names, stranger_names;
    std::uint64_t seed = 100;
    for (const auto *ft : zoo.finetuned()) {
        auto img =
            trace::boxBlur3(fingerprint::fingerprintImage(*ft, 64, seed++));
        if (ft->pretrainedName == best && family.size() < 6) {
            family.push_back(std::move(img));
            family_names.push_back(ft->task);
        } else if (ft->pretrainedName != best && strangers.size() < 6) {
            strangers.push_back(std::move(img));
            stranger_names.push_back(ft->pretrainedName);
        }
    }

    std::vector<double> within, across;
    util::Table t({"pair", "kind", "image distance"});
    for (std::size_t a = 0; a < family.size(); ++a) {
        for (std::size_t b = a + 1; b < family.size(); ++b) {
            const double d =
                trace::imageDistance(family[a], family[b]);
            within.push_back(d);
            t.row()
                .cell(family_names[a] + " vs " + family_names[b])
                .cell("same lineage")
                .cell(d, 5);
        }
    }
    for (std::size_t a = 0; a < family.size() && a < strangers.size();
         ++a) {
        const double d = trace::imageDistance(family[a], strangers[a]);
        across.push_back(d);
        t.row()
            .cell(family_names[a] + " vs " + stranger_names[a])
            .cell("cross lineage")
            .cell(d, 5);
    }

    util::printBanner(std::cout,
                      "Fig. 8: fingerprint inheritance within lineage '" +
                          best + "'");
    t.printAscii(std::cout);

    const double mean_within = util::mean(within);
    const double mean_across = util::mean(across);
    std::cout << "\nmean same-lineage distance: " << mean_within
              << "\nmean cross-lineage distance: " << mean_across
              << "\nratio: " << mean_across / mean_within
              << "  (fingerprints are inherited)\n";
    return mean_across > 2.0 * mean_within ? 0 : 1;
}
