/**
 * @file
 * Figure 18 reproduction: adversarial attack effectiveness of the
 * Decepticon clone versus eight substitute models fine-tuned from
 * random pre-trained backbones on the victim's prediction records
 * (the Thieves-on-Sesame-Street baseline). Expected shape: the
 * extracted clone's adversarial inputs transfer to the victim with a
 * far higher success rate than any substitute's.
 */

#include <iostream>

#include "attack/adversarial.hh"
#include "attack/substitute.hh"
#include "bench/workloads.hh"
#include "extraction/cloner.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    const auto cfg = bench::benchConfig(4);
    auto pre = bench::pretrainBackbone(cfg, 181, 200, 5);

    transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen, 1800, 4.0);
    const auto train = task.sample(200, 1);
    auto victim = bench::fineTuneFrom(*pre, task, train, 7,
                                      bench::fineTuneOptions());

    // Decepticon clone (level-2 extraction).
    extraction::ClonerOptions copts;
    copts.policy.baseDist = 0.02;
    copts.policy.significance = 0.0001;
    copts.policy.maxBitsPerWeight = 8;
    copts.agreementTarget = 0.995;
    auto clone_result = extraction::ModelCloner::extract(
        *victim, *pre, task.sample(120, 2).examples, copts);

    // The eight substitutes: random pre-trained backbones fine-tuned
    // on the victim's prediction records (18K inferences in the paper;
    // scaled here).
    const auto records = attack::recordPredictions(
        *victim, task.sample(150, 3).examples);
    transformer::TrainOptions sub_opts;
    sub_opts.epochs = 3;
    sub_opts.lr = 1e-3f;

    const auto seeds = task.sample(80, 4).examples;
    attack::AdversarialOptions aopts;
    aopts.maxFlips = 6;

    util::Table t({"surrogate", "attack success rate", "eligible seeds"});
    const auto clone_res = attack::evaluateTransfer(
        *victim, *clone_result.clone, seeds, aopts);
    t.row().cell("Decepticon clone").cell(clone_res.successRate(), 4)
        .cell(clone_res.eligible);

    double best_substitute = 0.0;
    for (int s = 0; s < 8; ++s) {
        auto random_pre = bench::pretrainBackbone(
            cfg, 9000 + static_cast<std::uint64_t>(s) * 17, 120, 3);
        auto substitute = attack::buildSubstitute(
            *random_pre, records, sub_opts,
            5000 + static_cast<std::uint64_t>(s));
        const auto res = attack::evaluateTransfer(*victim, *substitute,
                                                  seeds, aopts);
        best_substitute = std::max(best_substitute, res.successRate());
        t.row()
            .cell("substitute " + std::to_string(s + 1))
            .cell(res.successRate(), 4)
            .cell(res.eligible);
    }

    util::printBanner(std::cout,
                      "Fig. 18: adversarial transfer success on the "
                      "victim");
    t.printAscii(std::cout);
    std::cout << "\nclone success " << clone_res.successRate()
              << " vs best substitute " << best_substitute
              << "  (paper: 90.62% vs <=38%)\n";
    return clone_res.successRate() > best_substitute ? 0 : 1;
}
