/**
 * @file
 * Production-scale zoo bench: train the level-1 identifier over
 * procedural zoos of 64, 512, and 4096 identities and measure the
 * sublinear fingerprint index — lookup latency/throughput, shortlist
 * sizes, and indexed-vs-exhaustive accuracy (the EXPERIMENTS.md
 * zoo-scaling table reads from exactly these rows).
 *
 * The snapshot gauges ``zooindex.zoo<N>.lookups_per_sec`` are the
 * gated ones: bench_compare.py fails a candidate whose lookup
 * throughput drops more than the threshold below the committed
 * baseline (higher-is-better direction).
 *
 * Shape checks (exit non-zero on failure):
 *  - every sweep point trains the indexed path (never the CNN);
 *  - mean lookup at 4096 identities <= 4x the 512-identity lookup
 *    (the sublinearity gate — exhaustive scoring scales 8x);
 *  - indexed accuracy within 1 point of exhaustive re-ranking at
 *    every sweep point;
 *  - the shortlist stays a strict minority of the zoo at 512+;
 *  - two independently trained indexes over the same zoo produce
 *    identical shortlists and verdicts (build determinism).
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/decepticon.hh"
#include "fingerprint/index/embedding.hh"
#include "fingerprint/index/lsh.hh"
#include "gpusim/trace_generator.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "util/table.hh"
#include "zoo/procedural.hh"

using namespace decepticon;

namespace {

constexpr std::size_t kZooSizes[] = {64, 512, 4096};
constexpr std::size_t kQueriesPerPoint = 512;
constexpr std::uint64_t kQuerySeedBase = 0xace5ULL;

struct Point
{
    std::size_t zooSize = 0;
    double trainMicros = 0.0;
    double lookupMicros = 0.0; ///< mean embed + shortlist + re-rank
    double meanShortlist = 0.0;
    double fallbackRate = 0.0;
    double accuracyIndexed = 0.0;
    double accuracyExhaustive = 0.0;
    std::size_t hashBits = 0;
};

core::DecepticonOptions
attackerOptions()
{
    core::DecepticonOptions opts;
    opts.seed = 4;
    opts.indexZooThreshold = 64; // every sweep point takes the index
    return opts;
}

} // anonymous namespace

int
main()
{
    std::cout << "=== Zoo scaling (sublinear fingerprint index) ===\n";

    obs::MetricsRegistry bench_reg;
    util::Table table({"zoo size", "hash bits", "train ms",
                       "lookup us", "lookups/sec", "shortlist",
                       "fallback", "acc(index)", "acc(exhaust)"});

    bool ok = true;
    std::vector<Point> points;
    for (const std::size_t zoo_size : kZooSizes) {
        zoo::ProceduralZooOptions zopts;
        zopts.identities = zoo_size;
        zopts.families = 32;
        zopts.seed = 7;
        const zoo::ModelZoo pool = zoo::buildProceduralZoo(zopts);

        core::Decepticon level1(attackerOptions());
        const std::uint64_t t0 = obs::clock().nowMicros();
        level1.trainExtractor(pool);
        const std::uint64_t t1 = obs::clock().nowMicros();

        const fingerprint::FingerprintIndex *idx = level1.index();
        if (idx == nullptr) {
            std::cout << "FAIL: zoo " << zoo_size
                      << " trained the exhaustive CNN path instead "
                         "of the index\n";
            ok = false;
            continue;
        }

        Point point;
        point.zooSize = zoo_size;
        point.trainMicros = static_cast<double>(t1 - t0);
        point.hashBits = idx->hashBits();

        // Fresh-seed victim traces cycling the lineages: the query
        // set doubles as the accuracy probe and the timing workload.
        std::vector<gpusim::KernelTrace> queries;
        std::vector<std::size_t> truth;
        queries.reserve(kQueriesPerPoint);
        for (std::size_t q = 0; q < kQueriesPerPoint; ++q) {
            const std::size_t c = q % pool.pretrainedCount();
            const zoo::ModelIdentity &m = pool.pretrainedAt(c);
            queries.push_back(
                gpusim::TraceGenerator(m.signature)
                    .generate(m.arch, kQuerySeedBase + q));
            truth.push_back(c);
        }

        // Timed pass: the full per-victim lookup (embedding +
        // shortlist + exact re-rank + argmax), wall-clocked through
        // the obs shim.
        std::size_t correct_indexed = 0, probes = 0, shortlists = 0;
        std::size_t fallbacks = 0;
        const std::uint64_t l0 = obs::clock().nowMicros();
        for (std::size_t q = 0; q < queries.size(); ++q) {
            fingerprint::IndexLookupStats stats;
            const std::vector<float> emb =
                fingerprint::traceEmbedding(queries[q]);
            if (idx->classify(emb, &stats) == truth[q])
                ++correct_indexed;
            shortlists += stats.shortlistClasses;
            probes += stats.bucketProbes;
            fallbacks += stats.exhaustiveFallback ? 1 : 0;
        }
        const std::uint64_t l1 = obs::clock().nowMicros();
        const double n = static_cast<double>(queries.size());
        point.lookupMicros = static_cast<double>(l1 - l0) / n;
        point.meanShortlist = static_cast<double>(shortlists) / n;
        point.fallbackRate = static_cast<double>(fallbacks) / n;
        point.accuracyIndexed = static_cast<double>(correct_indexed) / n;

        // Exhaustive baseline: identical re-rank over every class —
        // what the indexed path must match to within one point.
        const std::vector<std::size_t> all = idx->allClasses();
        std::size_t correct_exhaustive = 0;
        for (std::size_t q = 0; q < queries.size(); ++q) {
            const std::vector<double> probs = idx->scores(
                fingerprint::traceEmbedding(queries[q]), all);
            std::size_t best = 0;
            for (std::size_t c = 1; c < probs.size(); ++c)
                if (probs[c] > probs[best])
                    best = c;
            if (best == truth[q])
                ++correct_exhaustive;
        }
        point.accuracyExhaustive =
            static_cast<double>(correct_exhaustive) / n;

        const double lookups_per_sec =
            point.lookupMicros > 0.0 ? 1e6 / point.lookupMicros : 0.0;
        table.row()
            .cell(point.zooSize)
            .cell(point.hashBits)
            .cell(point.trainMicros / 1000.0, 1)
            .cell(point.lookupMicros, 2)
            .cell(lookups_per_sec, 0)
            .cell(point.meanShortlist, 1)
            .cell(point.fallbackRate, 3)
            .cell(point.accuracyIndexed, 3)
            .cell(point.accuracyExhaustive, 3);

        const std::string prefix =
            "zooindex.zoo" + std::to_string(zoo_size);
        bench_reg.setGauge(prefix + ".lookups_per_sec",
                           lookups_per_sec);
        bench_reg.setGauge(prefix + ".mean_shortlist_classes",
                           point.meanShortlist);
        bench_reg.setGauge(prefix + ".fallback_rate",
                           point.fallbackRate);
        bench_reg.setGauge(prefix + ".accuracy_indexed",
                           point.accuracyIndexed);
        bench_reg.setGauge(prefix + ".accuracy_exhaustive",
                           point.accuracyExhaustive);
        bench_reg.setGauge(prefix + ".hash_bits",
                           static_cast<double>(point.hashBits));
        bench_reg.setGauge(prefix + ".train_millis",
                           point.trainMicros / 1000.0);

        if (point.accuracyIndexed <
            point.accuracyExhaustive - 0.01) {
            ok = false;
            std::cout << "FAIL: zoo " << zoo_size
                      << ": indexed accuracy "
                      << point.accuracyIndexed
                      << " more than 1pt below exhaustive "
                      << point.accuracyExhaustive << "\n";
        }
        if (zoo_size >= 512 &&
            point.meanShortlist >
                0.5 * static_cast<double>(zoo_size)) {
            ok = false;
            std::cout << "FAIL: zoo " << zoo_size
                      << ": mean shortlist " << point.meanShortlist
                      << " is not a strict minority of the zoo\n";
        }

        // Build determinism: a second independently trained attacker
        // over the same pool must agree shortlist-for-shortlist.
        if (zoo_size == 512) {
            core::Decepticon level1b(attackerOptions());
            level1b.trainExtractor(pool);
            const fingerprint::FingerprintIndex *idxb =
                level1b.index();
            for (std::size_t q = 0; q < 64 && idxb != nullptr; ++q) {
                const std::vector<float> emb =
                    fingerprint::traceEmbedding(queries[q]);
                if (idx->shortlist(emb) != idxb->shortlist(emb) ||
                    idx->classify(emb) != idxb->classify(emb)) {
                    ok = false;
                    std::cout << "FAIL: independently trained "
                                 "indexes disagree on query "
                              << q << "\n";
                    break;
                }
            }
        }
        points.push_back(point);
    }

    // The sublinearity gate: 8x the identities may cost at most 4x
    // the lookup. (Exhaustive re-ranking scales by construction at
    // 8x; the shortlist plus the growing hash width is what keeps
    // the indexed path under the bar.)
    double lookup512 = 0.0, lookup4096 = 0.0;
    for (const Point &p : points) {
        if (p.zooSize == 512)
            lookup512 = p.lookupMicros;
        if (p.zooSize == 4096)
            lookup4096 = p.lookupMicros;
    }
    if (lookup512 > 0.0 && lookup4096 > 0.0) {
        const double ratio = lookup4096 / lookup512;
        bench_reg.setGauge("zooindex.scale_ratio_4096_over_512",
                           ratio);
        if (ratio > 4.0) {
            ok = false;
            std::cout << "FAIL: 4096-identity lookup is " << ratio
                      << "x the 512-identity lookup (gate: 4x)\n";
        }
    } else {
        ok = false;
        std::cout << "FAIL: missing sweep points for the 4096/512 "
                     "scaling gate\n";
    }

    util::printBanner(std::cout,
                      "Indexed identification vs zoo size (512 "
                      "fresh-seed queries per point)");
    table.printAscii(std::cout);

    {
        std::ofstream out("BENCH_zoo_scale.json");
        bench_reg.exportJson(out);
        out << "\n";
    }
    std::cout << "wrote BENCH_zoo_scale.json\n";
    return ok ? 0 : 1;
}
