/**
 * @file
 * obsview — run inspector for obs v2 exports. Loads one or two
 * telemetry files (BENCH_*.json / exportJson objects, exportJsonl
 * metric streams, or flight-recorder JSONL dumps), renders per-stage
 * latency tables, top-N slowest spans, and watchdog findings, and —
 * given two metrics files — an A/B diff that highlights latency/
 * real-time regressions beyond a tolerance (the same >15% band
 * bench_compare.py gates on).
 *
 * Exit codes: 0 ok, 1 regression found (with --check), 2 bad input.
 *
 *   obsview run.json                     inspect one run
 *   obsview flight.jsonl                 inspect a flight dump
 *   obsview --check a.json b.json        diff, fail on regression
 *   obsview --threshold 10 --top 8 ...   tune bands
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/quantile.hh"
#include "util/table.hh"

namespace {

using decepticon::obs::LogHistogram;
namespace json = decepticon::obs::json;

struct LatencyStats
{
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
    std::uint64_t count = 0;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
};

struct FlightRow
{
    std::string kind;
    std::string stage;
    std::string detail;
    double value = 0.0;
    std::uint64_t ts = 0;
    std::uint64_t seq = 0;
};

struct RunData
{
    std::string path;
    bool isFlight = false;
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, LatencyStats> latencies;
    std::vector<FlightRow> flight;
    std::uint64_t flightDropped = 0;
    bool flightError = false;
    std::string rawText; // for bit-identity comparison of flight dumps
};

double
numberOr(const json::Value &obj, const char *key, double fallback)
{
    const json::Value *v = obj.find(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

std::string
stringOr(const json::Value &obj, const char *key)
{
    const json::Value *v = obj.find(key);
    return v != nullptr && v->isString() ? v->string : "";
}

LatencyStats
parseLatency(const json::Value &obj)
{
    LatencyStats s;
    s.mean = numberOr(obj, "mean", 0.0);
    s.count = static_cast<std::uint64_t>(numberOr(obj, "count", 0.0));
    s.underflow =
        static_cast<std::uint64_t>(numberOr(obj, "underflow", 0.0));
    s.overflow =
        static_cast<std::uint64_t>(numberOr(obj, "overflow", 0.0));
    const json::Value *counts = obj.find("counts");
    if (counts != nullptr && counts->isArray() && !counts->array.empty()) {
        // Reconstruct the histogram and recompute quantiles — the
        // round-trip exercises the same fixed geometry the exporter
        // used, so a geometry drift shows up as a test failure here.
        std::vector<std::uint64_t> raw;
        raw.reserve(counts->array.size());
        for (const auto &c : counts->array)
            raw.push_back(static_cast<std::uint64_t>(c.number));
        const LogHistogram h = LogHistogram::fromCounts(
            raw, s.underflow, s.overflow, numberOr(obj, "sum", 0.0));
        s.p50 = h.quantile(0.50);
        s.p90 = h.quantile(0.90);
        s.p99 = h.quantile(0.99);
        return s;
    }
    s.p50 = numberOr(obj, "p50", 0.0);
    s.p90 = numberOr(obj, "p90", 0.0);
    s.p99 = numberOr(obj, "p99", 0.0);
    return s;
}

bool
loadMetricsObject(const json::Value &root, RunData &run)
{
    const json::Value *counters = root.find("counters");
    if (counters != nullptr && counters->isObject())
        for (const auto &[name, v] : counters->object)
            run.counters[name] = v.number;
    const json::Value *gauges = root.find("gauges");
    if (gauges != nullptr && gauges->isObject())
        for (const auto &[name, v] : gauges->object)
            run.gauges[name] = v.number;
    const json::Value *lats = root.find("latencies");
    if (lats != nullptr && lats->isObject())
        for (const auto &[name, v] : lats->object)
            run.latencies[name] = parseLatency(v);
    return counters != nullptr || gauges != nullptr || lats != nullptr;
}

bool
loadJsonlLine(const json::Value &obj, RunData &run)
{
    const std::string type = stringOr(obj, "type");
    const std::string name = stringOr(obj, "name");
    if (type == "counter") {
        run.counters[name] = numberOr(obj, "value", 0.0);
    } else if (type == "gauge") {
        run.gauges[name] = numberOr(obj, "value", 0.0);
    } else if (type == "latency") {
        run.latencies[name] = parseLatency(obj);
    } else if (type == "histogram") {
        // Fixed-width histograms carry no quantiles; skip.
    } else if (type == "flight") {
        run.isFlight = true;
        FlightRow row;
        row.kind = stringOr(obj, "kind");
        row.stage = stringOr(obj, "stage");
        row.detail = stringOr(obj, "detail");
        row.value = numberOr(obj, "value", 0.0);
        row.ts = static_cast<std::uint64_t>(numberOr(obj, "ts", 0.0));
        row.seq = static_cast<std::uint64_t>(numberOr(obj, "seq", 0.0));
        run.flight.push_back(std::move(row));
    } else if (type == "flight_summary") {
        run.isFlight = true;
        run.flightDropped =
            static_cast<std::uint64_t>(numberOr(obj, "dropped", 0.0));
        run.flightError = numberOr(obj, "error", 0.0) != 0.0;
    } else {
        return false;
    }
    return true;
}

bool
loadFile(const std::string &path, RunData &run)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "obsview: cannot open " << path << "\n";
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    run.path = path;
    run.rawText = buffer.str();

    // A single JSON object (exportJson / BENCH_*.json) parses whole.
    json::Value root;
    if (json::parse(run.rawText, root, nullptr) && root.isObject() &&
        root.find("counters") != nullptr)
        return loadMetricsObject(root, run);

    // Otherwise treat it as JSONL (metrics stream or flight dump).
    std::istringstream lines(run.rawText);
    std::string line;
    bool any = false;
    while (std::getline(lines, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        json::Value obj;
        std::string err;
        if (!json::parse(line, obj, &err)) {
            std::cerr << "obsview: " << path << ": bad JSONL line: "
                      << err << "\n";
            return false;
        }
        if (loadJsonlLine(obj, run))
            any = true;
    }
    if (!any)
        std::cerr << "obsview: " << path
                  << ": no recognizable telemetry records\n";
    return any;
}

void
renderLatencies(const RunData &run)
{
    decepticon::util::printBanner(std::cout,
                                  "latency percentiles (" + run.path +
                                      ")");
    if (run.latencies.empty()) {
        std::cout << "(no latency histograms in this export)\n";
        return;
    }
    decepticon::util::Table table(
        {"name", "count", "p50_us", "p90_us", "p99_us", "mean_us",
         "clipped"});
    for (const auto &[name, s] : run.latencies)
        table.row()
            .cell(name)
            .cell(static_cast<long long>(s.count))
            .cell(s.p50, 1)
            .cell(s.p90, 1)
            .cell(s.p99, 1)
            .cell(s.mean, 1)
            .cell(static_cast<long long>(s.underflow + s.overflow));
    table.printAscii(std::cout);
}

void
renderWatchdog(const RunData &run)
{
    decepticon::util::printBanner(std::cout, "watchdog");
    static const char *kCounters[] = {
        "obs.watchdog.ticks", "obs.watchdog.stalls",
        "obs.watchdog.fault_spikes", "obs.watchdog.abstain_anomalies",
        "obs.watchdog.findings"};
    bool any = false;
    decepticon::util::Table table({"counter", "value"});
    for (const char *name : kCounters) {
        const auto it = run.counters.find(name);
        if (it == run.counters.end())
            continue;
        any = true;
        table.row().cell(name).cell(
            static_cast<long long>(it->second));
    }
    const auto findings = run.gauges.find("run.watchdog_findings");
    if (findings != run.gauges.end()) {
        any = true;
        table.row().cell("run.watchdog_findings").cell(
            static_cast<long long>(findings->second));
    }
    if (!any) {
        std::cout << "(no watchdog data in this export)\n";
        return;
    }
    table.printAscii(std::cout);
}

void
renderFlight(const RunData &run, std::size_t top_n)
{
    decepticon::util::printBanner(std::cout,
                                  "flight recorder (" + run.path + ")");
    std::map<std::string, std::uint64_t> by_kind;
    for (const auto &row : run.flight)
        ++by_kind[row.kind];
    decepticon::util::Table summary({"kind", "events"});
    for (const auto &[kind, n] : by_kind)
        summary.row().cell(kind).cell(static_cast<long long>(n));
    summary.printAscii(std::cout);
    std::cout << "events " << run.flight.size() << ", dropped "
              << run.flightDropped << ", error "
              << (run.flightError ? "yes" : "no") << "\n";

    std::vector<const FlightRow *> exits;
    for (const auto &row : run.flight)
        if (row.kind == "stage_exit")
            exits.push_back(&row);
    std::sort(exits.begin(), exits.end(),
              [](const FlightRow *a, const FlightRow *b) {
                  return a->value > b->value;
              });
    if (exits.size() > top_n)
        exits.resize(top_n);
    decepticon::util::printBanner(std::cout, "slowest spans");
    decepticon::util::Table slow({"stage", "micros", "ts", "seq"});
    for (const FlightRow *row : exits)
        slow.row()
            .cell(row->stage)
            .cell(row->value, 1)
            .cell(static_cast<std::size_t>(row->ts))
            .cell(static_cast<std::size_t>(row->seq));
    slow.printAscii(std::cout);
}

bool
isGatedGauge(const std::string &name)
{
    // Mirror of bench_compare.py's gate filter: wall-clock gauges and
    // the per-stage p99 latency rollups.
    const auto ends = [&](const char *suffix) {
        const std::string s(suffix);
        return name.size() >= s.size() &&
               name.compare(name.size() - s.size(), s.size(), s) == 0;
    };
    return (name.rfind("bench.", 0) == 0 && ends(".real_time")) ||
           ends(".p99_micros");
}

/** Returns the number of regressions beyond `threshold` percent. */
int
diffRuns(const RunData &a, const RunData &b, double threshold)
{
    decepticon::util::printBanner(std::cout, "A/B diff: A=" + a.path +
                                                 "  B=" + b.path);
    int regressions = 0;
    decepticon::util::Table table(
        {"metric", "A", "B", "delta_pct", "verdict"});
    const auto judge = [&](const std::string &name, double va,
                           double vb) {
        double pct = 0.0;
        if (va > 0.0)
            pct = (vb - va) / va * 100.0;
        else if (vb > 0.0)
            pct = 100.0;
        std::string verdict = "ok";
        if (pct > threshold) {
            verdict = "REGRESSION";
            ++regressions;
        } else if (pct < -threshold) {
            verdict = "improved";
        }
        table.row().cell(name).cell(va, 1).cell(vb, 1).cell(pct, 1).cell(
            verdict);
    };
    for (const auto &[name, sa] : a.latencies) {
        const auto it = b.latencies.find(name);
        if (it != b.latencies.end())
            judge(name + " p99", sa.p99, it->second.p99);
    }
    for (const auto &[name, va] : a.gauges) {
        if (!isGatedGauge(name))
            continue;
        const auto it = b.gauges.find(name);
        if (it != b.gauges.end())
            judge(name, va, it->second);
    }
    if (table.numRows() == 0) {
        std::cout << "(no shared latency/gauge metrics to compare)\n";
        return 0;
    }
    table.printAscii(std::cout);

    std::size_t only_a = 0, only_b = 0;
    for (const auto &[name, s] : a.latencies)
        if (b.latencies.find(name) == b.latencies.end())
            ++only_a;
    for (const auto &[name, s] : b.latencies)
        if (a.latencies.find(name) == a.latencies.end())
            ++only_b;
    if (only_a + only_b > 0)
        std::cout << "unshared latency metrics: " << only_a
                  << " only in A, " << only_b << " only in B\n";
    std::cout << regressions << " regression(s) beyond " << threshold
              << "%\n";
    return regressions;
}

int
diffFlights(const RunData &a, const RunData &b)
{
    decepticon::util::printBanner(std::cout, "flight diff: A=" + a.path +
                                                 "  B=" + b.path);
    const bool identical = a.rawText == b.rawText;
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> kinds;
    for (const auto &row : a.flight)
        ++kinds[row.kind + "/" + row.stage].first;
    for (const auto &row : b.flight)
        ++kinds[row.kind + "/" + row.stage].second;
    decepticon::util::Table table({"kind/stage", "A", "B"});
    for (const auto &[key, n] : kinds)
        table.row()
            .cell(key)
            .cell(static_cast<long long>(n.first))
            .cell(static_cast<long long>(n.second));
    table.printAscii(std::cout);
    std::cout << "streams byte-identical: " << (identical ? "yes" : "no")
              << "\n";
    return identical ? 0 : 1;
}

void
usage()
{
    std::cerr
        << "usage: obsview [--check] [--threshold PCT] [--top N] "
           "FILE [FILE_B]\n"
           "  FILE: exportJson object, exportJsonl stream, or flight "
           "JSONL dump\n"
           "  --check      exit 1 when the A/B diff finds a regression\n"
           "               (or flight streams differ)\n"
           "  --threshold  regression band in percent (default 15)\n"
           "  --top        slowest-span rows to show (default 5)\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool check = false;
    double threshold = 15.0;
    std::size_t top_n = 5;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check") {
            check = true;
        } else if (arg == "--threshold" && i + 1 < argc) {
            threshold = std::stod(argv[++i]);
        } else if (arg == "--top" && i + 1 < argc) {
            top_n = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "obsview: unknown option " << arg << "\n";
            usage();
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty() || files.size() > 2) {
        usage();
        return 2;
    }

    RunData a;
    if (!loadFile(files[0], a))
        return 2;

    if (files.size() == 1) {
        if (a.isFlight) {
            renderFlight(a, top_n);
        } else {
            renderLatencies(a);
            renderWatchdog(a);
        }
        return 0;
    }

    RunData b;
    if (!loadFile(files[1], b))
        return 2;
    if (a.isFlight != b.isFlight) {
        std::cerr << "obsview: cannot diff a flight dump against a "
                     "metrics export\n";
        return 2;
    }
    int regressions = 0;
    if (a.isFlight) {
        renderFlight(a, top_n);
        renderFlight(b, top_n);
        regressions = diffFlights(a, b);
    } else {
        renderLatencies(a);
        renderLatencies(b);
        regressions = diffRuns(a, b, threshold);
    }
    return check && regressions > 0 ? 1 : 0;
}
