/**
 * @file
 * Dataflow rules for decepticon-lint v2, built on the symbol index:
 *
 *   R7  a shared Rng lvalue captured by reference (or an Rng pointer
 *       captured at all, or an init-capture aliasing one) into a
 *       parallelFor/parallelForRange task whose body uses it for
 *       anything except `.split(` — every lane would advance one
 *       generator, making each task's stream depend on lane timing.
 *       `rng.split(i)` is const and pure, so a body that only splits
 *       is the blessed pattern and stays quiet.
 *
 *   R8  `+=` / `-=` on a by-reference-captured float/double/Tensor
 *       accumulator inside a parallel task body: float addition does
 *       not commute bit-exactly, so the reduction value depends on
 *       the interleaving. Task-local accumulators and indexed
 *       per-slot writes (`out[i] = ...`) are untouched.
 *
 *   R10 a raw Tracer::beginSpan whose enclosing function either
 *       never calls endSpan, or can `return` after the span opens
 *       with no endSpan on that path. RAII (obs::ScopedSpan) never
 *       tokenizes as beginSpan at the call site, so it is exempt by
 *       construction. Spans opened inside nested lambdas are outside
 *       this function-granularity check (use ScopedSpan there).
 *
 * R7/R8 run under [dataflow.paths]; R10 under [r10.paths] minus
 * [r10.allow_dirs] (the obs layer implements the tracer and owns raw
 * begin/end internally).
 */

#include "lint.hh"

#include <algorithm>

namespace decepticon::lint {

namespace {

bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
underAny(const std::string &path, const std::vector<std::string> &dirs)
{
    for (const std::string &d : dirs)
        if (hasPrefix(path, d + "/") || path == d)
            return true;
    return false;
}

const std::string &
tokText(const std::vector<Token> &t, std::size_t i)
{
    static const std::string empty;
    return i < t.size() ? t[i].text : empty;
}

/** Is t[k] a use of `name` as an object (not a member of something
 *  else, not a direct call of a function with that name)? */
bool
isObjectUse(const std::vector<Token> &t, std::size_t k)
{
    const std::string &prev = k ? t[k - 1].text : tokText(t, t.size());
    if (prev == "." || prev == "::")
        return false; // member/qualified name of something else
    if (tokText(t, k + 1) == "(")
        return false; // direct call: a function name, not the lvalue
    return true;
}

/** Does t[k] (a use of an Rng name) immediately call .split( or
 *  ->split(? */
bool
isSplitCall(const std::vector<Token> &t, std::size_t k)
{
    if (tokText(t, k + 1) == "." && tokText(t, k + 2) == "split" &&
        tokText(t, k + 3) == "(")
        return true;
    if (tokText(t, k + 1) == "-" && tokText(t, k + 2) == ">" &&
        tokText(t, k + 3) == "split" && tokText(t, k + 4) == "(")
        return true;
    return false;
}

/** Shared-capture test: explicit [&name], or default [&] without a
 *  by-value override. */
bool
capturedByRef(const LambdaInfo &lam, const std::string &name)
{
    if (lam.refCaptures.count(name))
        return true;
    return lam.defaultRef && !lam.copyCaptures.count(name);
}

void
checkR7(const SourceFile &f, const TuIndex &ix, FileSummary &s)
{
    for (const LambdaInfo &lam : ix.lambdas) {
        if (!lam.parallelTask || lam.bodyEnd <= lam.bodyBegin)
            continue;
        // Task-local Rngs are the blessed pattern, not shared state.
        std::set<std::string> localRng, localPtr, localAcc;
        collectTypedDecls(ix.toks, lam.bodyBegin + 1, lam.bodyEnd,
                          localRng, localPtr, localAcc);

        // name -> what the body actually references (aliases resolve
        // to their own name: the body uses the alias).
        std::set<std::string> watch;
        for (const std::string &n : ix.rngNames)
            if (capturedByRef(lam, n) && !localRng.count(n))
                watch.insert(n);
        for (const std::string &n : ix.rngPointers)
            if ((capturedByRef(lam, n) || lam.copyCaptures.count(n) ||
                 lam.defaultCopy) &&
                !localPtr.count(n))
                watch.insert(n); // a copied pointer still aliases
        for (const auto &[alias, target] : lam.refAliases)
            if (ix.rngNames.count(target) || ix.rngPointers.count(target))
                watch.insert(alias);
        if (watch.empty())
            continue;

        for (const std::string &name : watch) {
            int firstUse = 0, uses = 0, splits = 0;
            for (std::size_t k = lam.bodyBegin + 1; k < lam.bodyEnd;
                 ++k) {
                if (!ix.toks[k].ident || ix.toks[k].text != name ||
                    !isObjectUse(ix.toks, k))
                    continue;
                ++uses;
                if (!firstUse)
                    firstUse = ix.toks[k].line;
                if (isSplitCall(ix.toks, k))
                    ++splits;
            }
            if (uses > 0 && splits == 0)
                emitLocal(
                    s, firstUse, "R7",
                    "shared Rng '" + name +
                        "' captured by reference into a parallel task "
                        "without .split(): every lane advances the same "
                        "generator, so each task's stream depends on "
                        "the interleaving — derive a per-task stream "
                        "with rng.split(task_index)");
        }
    }
    (void)f;
}

void
checkR8(const SourceFile &f, const TuIndex &ix, FileSummary &s)
{
    for (const LambdaInfo &lam : ix.lambdas) {
        if (!lam.parallelTask || lam.bodyEnd <= lam.bodyBegin)
            continue;
        std::set<std::string> localRng, localPtr, localAcc;
        collectTypedDecls(ix.toks, lam.bodyBegin + 1, lam.bodyEnd,
                          localRng, localPtr, localAcc);

        std::set<std::string> watch;
        for (const std::string &n : ix.floatAccums)
            if (capturedByRef(lam, n) && !localAcc.count(n))
                watch.insert(n);
        for (const auto &[alias, target] : lam.refAliases)
            if (ix.floatAccums.count(target))
                watch.insert(alias);
        if (watch.empty())
            continue;

        for (std::size_t k = lam.bodyBegin + 1; k + 2 < lam.bodyEnd;
             ++k) {
            if (!ix.toks[k].ident || !watch.count(ix.toks[k].text))
                continue;
            const std::string &prev = ix.toks[k - 1].text;
            if (prev == "." || prev == "::")
                continue;
            const std::string &op = ix.toks[k + 1].text;
            if ((op == "+" || op == "-") && ix.toks[k + 2].text == "=")
                emitLocal(
                    s, ix.toks[k].line, "R8",
                    "order-dependent reduction: '" + ix.toks[k].text +
                        " " + op +
                        "=' on a by-reference-captured float "
                        "accumulator inside a parallel task — float "
                        "addition does not commute bit-exactly; write "
                        "per-task partials and reduce serially in "
                        "queue order");
        }
    }
    (void)f;
}

void
checkR10(const SourceFile &f, const TuIndex &ix, const Config &cfg,
         FileSummary &s)
{
    if (!underAny(f.path, cfg.r10Paths) ||
        underAny(f.path, cfg.r10AllowDirs))
        return;

    for (const TuIndex::FnDef &fd : ix.functions) {
        if (fd.bodyEnd <= fd.bodyBegin)
            continue;
        // Nested lambda bodies are separate execution scopes: their
        // returns do not leave this function, and spans they open
        // are out of scope for this function-granularity check.
        std::vector<std::pair<std::size_t, std::size_t>> nested;
        for (const LambdaInfo &lam : ix.lambdas)
            if (lam.introTok > fd.bodyBegin && lam.bodyEnd < fd.bodyEnd)
                nested.push_back({lam.bodyBegin, lam.bodyEnd});
        auto inNested = [&](std::size_t k) {
            for (const auto &[b, e] : nested)
                if (k >= b && k <= e)
                    return true;
            return false;
        };

        std::vector<std::size_t> begins, ends, returns;
        for (std::size_t k = fd.bodyBegin; k < fd.bodyEnd; ++k) {
            if (!ix.toks[k].ident || inNested(k))
                continue;
            const std::string &x = ix.toks[k].text;
            if (x == "beginSpan" && tokText(ix.toks, k + 1) == "(")
                begins.push_back(k);
            else if (x == "endSpan" && tokText(ix.toks, k + 1) == "(")
                ends.push_back(k);
            else if (x == "return")
                returns.push_back(k);
        }
        if (begins.empty())
            continue;
        if (ends.empty()) {
            emitLocal(s, ix.toks[begins.front()].line, "R10",
                      "raw beginSpan is never ended in this function: "
                      "every path must call endSpan, or use "
                      "obs::ScopedSpan so unwinding closes the span");
            continue;
        }
        const std::size_t first = begins.front();
        for (std::size_t r : returns) {
            if (r < first)
                continue;
            const bool closed =
                std::any_of(ends.begin(), ends.end(),
                            [&](std::size_t e) {
                                return e > first && e < r;
                            });
            if (!closed)
                emitLocal(
                    s, ix.toks[r].line, "R10",
                    "early return leaks the span opened by beginSpan "
                    "at line " +
                        std::to_string(ix.toks[first].line) +
                        ": call endSpan on this path or use "
                        "obs::ScopedSpan");
        }
    }
}

} // namespace

void
checkDataflow(const SourceFile &f, const TuIndex &ix, const Config &cfg,
              FileSummary &s)
{
    if (underAny(f.path, cfg.dataflowPaths)) {
        checkR7(f, ix, s);
        checkR8(f, ix, s);
    }
    checkR10(f, ix, cfg, s);
}

} // namespace decepticon::lint
