/**
 * @file
 * R2 for decepticon-lint: build the quoted-#include graph across
 * src/, enforce the declared subsystem partial order (an edge
 * a -> b is legal iff rank(a) > rank(b) or a == b), and reject
 * file-level include cycles. Only files under src/ contribute
 * edges — tests/bench/examples sit above every layer by
 * construction. Runs over the per-file summaries, so it sees cached
 * and freshly-scanned files identically and is recomputed every run:
 * a cache hit can never hide a layering regression introduced by a
 * different file.
 */

#include "lint.hh"

#include <algorithm>
#include <functional>

namespace decepticon::lint {

std::vector<Include>
quotedIncludes(const SourceFile &f)
{
    std::vector<Include> out;
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &s = f.code[li];
        const std::size_t h = s.find('#');
        if (h == std::string::npos ||
            s.find("include", h) == std::string::npos)
            continue;
        const std::size_t q1 = s.find('"', h);
        if (q1 == std::string::npos)
            continue;
        const std::size_t q2 = s.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        // The code view blanks string contents; read from raw.
        out.push_back({f.raw[li].substr(q1 + 1, q2 - q1 - 1),
                       static_cast<int>(li + 1)});
    }
    return out;
}

namespace {

/**
 * Subsystem of a src-relative path. Longest declared prefix wins, so
 * a nested module declared in layers.toml (e.g. "fingerprint/index")
 * ranks independently of its parent directory; undeclared
 * subdirectories fold into the first path segment as before.
 */
std::string
moduleOf(const std::string &srcRelPath, const Config &cfg)
{
    const std::size_t slash = srcRelPath.find('/');
    if (slash == std::string::npos)
        return std::string();
    const std::size_t slash2 = srcRelPath.find('/', slash + 1);
    if (slash2 != std::string::npos) {
        const std::string nested = srcRelPath.substr(0, slash2);
        if (cfg.layerOf.count(nested))
            return nested;
    }
    return srcRelPath.substr(0, slash);
}

} // namespace

void
checkIncludeGraph(std::vector<FileSummary> &sums, const Config &cfg,
                  Report &out)
{
    // Index of src-relative path -> position in `sums` for cycle
    // walking, plus the per-file adjacency built as we rank-check.
    std::map<std::string, std::size_t> bySrcPath;
    for (std::size_t i = 0; i < sums.size(); ++i) {
        const std::string &p = sums[i].path;
        if (p.rfind("src/", 0) == 0)
            bySrcPath[p.substr(4)] = i;
    }

    std::map<std::string, std::vector<std::pair<std::string, int>>> adj;
    for (FileSummary &s : sums) {
        if (s.path.rfind("src/", 0) != 0)
            continue;
        const std::string fromRel = s.path.substr(4);
        const std::string fromMod = moduleOf(fromRel, cfg);
        for (const Include &inc : s.includes) {
            const std::string toMod = moduleOf(inc.target, cfg);
            if (toMod.empty() || !cfg.layerOf.count(toMod))
                continue; // not a subsystem header (e.g. local file)
            if (bySrcPath.count(inc.target))
                adj[fromRel].push_back({inc.target, inc.line});
            if (!cfg.layerOf.count(fromMod)) {
                emitCross(s, inc.line, "R2",
                          "module '" + fromMod +
                              "' is not declared in the layers "
                              "config — add it to layers.toml",
                          out);
                continue;
            }
            if (fromMod == toMod)
                continue;
            if (cfg.allowEdges.count({fromMod, toMod}))
                continue;
            const int fromRank = cfg.layerOf.at(fromMod);
            const int toRank = cfg.layerOf.at(toMod);
            if (fromRank <= toRank) {
                emitCross(
                    s, inc.line, "R2",
                    "layering violation: " + fromMod + " (layer " +
                        std::to_string(fromRank) + ") must not include " +
                        toMod + " (layer " + std::to_string(toRank) +
                        ") — the subsystem DAG flows strictly downward",
                    out);
            }
        }
    }

    // File-level cycle detection (include guards make a cycle build,
    // but the dependency knot is real and always a design bug).
    // Deterministic: files visited in sorted order, includes in file
    // order; the first cycle found is reported once.
    enum class Mark
    {
        White,
        Grey,
        Black
    };
    std::map<std::string, Mark> mark;
    std::vector<std::string> stack;
    std::vector<std::string> cycle;

    std::function<bool(const std::string &)> dfs =
        [&](const std::string &node) -> bool {
        mark[node] = Mark::Grey;
        stack.push_back(node);
        auto it = adj.find(node);
        if (it != adj.end()) {
            for (const auto &[next, line] : it->second) {
                (void)line;
                if (mark[next] == Mark::Grey) {
                    const auto at =
                        std::find(stack.begin(), stack.end(), next);
                    cycle.assign(at, stack.end());
                    cycle.push_back(next);
                    return true;
                }
                if (mark[next] == Mark::White && dfs(next))
                    return true;
            }
        }
        stack.pop_back();
        mark[node] = Mark::Black;
        return false;
    };

    for (const auto &[path, idx] : bySrcPath) {
        (void)idx;
        if (mark[path] == Mark::White && dfs(path)) {
            std::string desc = "include cycle: ";
            for (std::size_t i = 0; i < cycle.size(); ++i) {
                if (i)
                    desc += " -> ";
                desc += cycle[i];
            }
            FileSummary &s = sums[bySrcPath.at(cycle.front())];
            emitCross(s, 1, "R2", desc, out);
            break;
        }
    }
}

} // namespace decepticon::lint
