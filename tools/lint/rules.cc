/**
 * @file
 * Per-file rules for decepticon-lint: R1 (banned nondeterminism),
 * R3 (unordered-iteration hazard), R4 (raw-thread ban), R5 (hygiene),
 * R6 (console-I/O ban in library code).
 * All token-level checks run over the comment/string-blanked code
 * view, so `"std::rand()"` in a log string or a doc comment never
 * fires.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>

namespace decepticon::lint {

namespace {

struct Token
{
    std::string text;
    int line = 0;    ///< 1-based
    bool ident = false;
};

/** Tokenize the code view into identifiers and punctuation. `::` is
 *  one token; every other punctuation char is its own token. */
std::vector<Token>
tokenize(const SourceFile &f)
{
    std::vector<Token> toks;
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &s = f.code[li];
        const int line = static_cast<int>(li + 1);
        for (std::size_t i = 0; i < s.size();) {
            const unsigned char c = static_cast<unsigned char>(s[i]);
            if (std::isspace(c)) {
                ++i;
            } else if (std::isalpha(c) || c == '_') {
                std::size_t b = i;
                while (i < s.size() &&
                       (std::isalnum(static_cast<unsigned char>(s[i])) ||
                        s[i] == '_'))
                    ++i;
                toks.push_back({s.substr(b, i - b), line, true});
            } else if (std::isdigit(c)) {
                std::size_t b = i;
                while (i < s.size() &&
                       (std::isalnum(static_cast<unsigned char>(s[i])) ||
                        s[i] == '.'))
                    ++i;
                toks.push_back({s.substr(b, i - b), line, false});
            } else if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
                toks.push_back({"::", line, false});
                i += 2;
            } else {
                toks.push_back({std::string(1, s[i]), line, false});
                ++i;
            }
        }
    }
    return toks;
}

bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

/** True if `path` lies under any of the directory prefixes. */
bool
underAny(const std::string &path, const std::vector<std::string> &dirs)
{
    for (const std::string &d : dirs)
        if (hasPrefix(path, d + "/") || path == d)
            return true;
    return false;
}

const std::string &
tokText(const std::vector<Token> &t, std::size_t i)
{
    static const std::string empty;
    return i < t.size() ? t[i].text : empty;
}

/** Is token i qualified as std::X (directly or via nested ::)? Bare
 *  (unqualified) uses also count — `using namespace std` exists — but
 *  `foo::X` / `obj.X` / `obj->X` do not. */
bool
stdQualifiedOrBare(const std::vector<Token> &t, std::size_t i)
{
    if (i >= 2 && t[i - 1].text == "::")
        return t[i - 2].text == "std";
    if (i >= 1 && (t[i - 1].text == "." || t[i - 1].text == ">"))
        return false; // member access (`->` tokenizes as `-` `>`)
    return true;
}

bool
isUnorderedContainer(const std::string &id)
{
    return id == "unordered_map" || id == "unordered_set" ||
           id == "unordered_multimap" || id == "unordered_multiset";
}

/** Skip a balanced <...> template argument list starting at t[i]
 *  (which must be "<"). Returns the index one past the closing ">",
 *  or i if the list never closes. */
std::size_t
skipTemplateArgs(const std::vector<Token> &t, std::size_t i)
{
    if (tokText(t, i) != "<")
        return i;
    int depth = 0;
    std::size_t k = i;
    for (; k < t.size(); ++k) {
        if (t[k].text == "<")
            ++depth;
        else if (t[k].text == ">" && --depth == 0)
            return k + 1;
        else if (t[k].text == ";")
            break; // statement ended: was a comparison, not a template
    }
    return i;
}

// --- R1: banned nondeterminism ------------------------------------

void
checkR1(SourceFile &f, const std::vector<Token> &t, const Config &cfg,
        Report &out)
{
    if (cfg.r1AllowFiles.count(f.path))
        return;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident)
            continue;
        const std::string &id = t[i].text;
        if ((id == "rand" || id == "srand") && tokText(t, i + 1) == "(" &&
            stdQualifiedOrBare(t, i)) {
            emitViolation(f, t[i].line, "R1",
                          "call to " + id +
                              "(): use util::Rng (seed-derived) instead",
                          out);
        } else if (id == "random_device" && stdQualifiedOrBare(t, i)) {
            emitViolation(f, t[i].line, "R1",
                          "std::random_device is entropy, not "
                          "reproducible: derive seeds via util::Rng::split",
                          out);
        } else if (id == "time" && tokText(t, i + 1) == "(" &&
                   stdQualifiedOrBare(t, i)) {
            const std::string &arg = tokText(t, i + 2);
            if (arg == ")" || ((arg == "0" || arg == "NULL" ||
                                arg == "nullptr") &&
                               tokText(t, i + 3) == ")")) {
                emitViolation(f, t[i].line, "R1",
                              "wall-clock time() call: timestamps must "
                              "come from obs::SteadyClock",
                              out);
            }
        } else if ((id == "steady_clock" || id == "system_clock" ||
                    id == "high_resolution_clock") &&
                   tokText(t, i + 1) == "::" &&
                   tokText(t, i + 2) == "now") {
            emitViolation(f, t[i].line, "R1",
                          id + "::now() outside the clock shim: inject "
                               "obs::Clock so tests can fake time",
                          out);
        }
    }
}

// --- R3: unordered-iteration hazard -------------------------------

void
checkR3(SourceFile &f, const std::vector<Token> &t, const Config &cfg,
        Report &out)
{
    if (!underAny(f.path, cfg.r3Paths))
        return;

    // Pass 1: names declared with an unordered container type
    // anywhere in this file (declaration and iteration usually share
    // a file; member declarations in a paired header are out of
    // reach of a single-TU scan and are caught by the token fallback
    // below when the range expression names the container type).
    std::set<std::string> unorderedNames;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident || !isUnorderedContainer(t[i].text))
            continue;
        std::size_t k = skipTemplateArgs(t, i + 1);
        if (k == i + 1)
            continue; // no template args in sight
        // `std::unordered_map<K, V> name` — possibly with &, *, or
        // qualifiers between.
        while (tokText(t, k) == "&" || tokText(t, k) == "*")
            ++k;
        if (k < t.size() && t[k].ident && t[k].text != "const")
            unorderedNames.insert(t[k].text);
    }

    // Pass 2: range-for statements whose range expression names a
    // declared-unordered variable or an unordered container type.
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident || t[i].text != "for" || tokText(t, i + 1) != "(")
            continue;
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t k = i + 1; k < t.size(); ++k) {
            if (t[k].text == "(") {
                ++depth;
            } else if (t[k].text == ")") {
                if (--depth == 0) {
                    close = k;
                    break;
                }
            } else if (t[k].text == ":" && depth == 1 && colon == 0) {
                colon = k;
            }
        }
        if (colon == 0 || close == 0)
            continue; // classic for, or unterminated
        for (std::size_t k = colon + 1; k < close; ++k) {
            if (!t[k].ident)
                continue;
            if (unorderedNames.count(t[k].text) ||
                isUnorderedContainer(t[k].text)) {
                emitViolation(
                    f, t[i].line, "R3",
                    "range-for over unordered container '" + t[k].text +
                        "': iteration order is not deterministic "
                        "(sort keys, use std::map, or justify with "
                        "`// lint: ordered-ok <why>`)",
                    out);
                break;
            }
        }
    }
}

// --- R4: raw-thread ban -------------------------------------------

void
checkR4(SourceFile &f, const std::vector<Token> &t, const Config &cfg,
        Report &out)
{
    if (underAny(f.path, cfg.r4AllowDirs))
        return;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident)
            continue;
        const std::string &id = t[i].text;
        const bool stdQual = i >= 2 && t[i - 1].text == "::" &&
                             t[i - 2].text == "std";
        if ((id == "thread" || id == "jthread") && stdQual &&
            tokText(t, i + 1) != "::") {
            // std::thread::id etc. are types, not spawns — allowed.
            emitViolation(f, t[i].line, "R4",
                          "raw std::" + id +
                              ": all parallelism goes through "
                              "sched::ThreadPool (deterministic, "
                              "DECEPTICON_THREADS-sized)",
                          out);
        } else if (id == "async" && stdQual) {
            emitViolation(f, t[i].line, "R4",
                          "std::async spawns unmanaged threads: use "
                          "sched::parallelFor / ThreadPool",
                          out);
        }
    }
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &s = f.code[li];
        const std::size_t h = s.find('#');
        if (h == std::string::npos)
            continue;
        if (s.find("pragma", h) != std::string::npos &&
            s.find(" omp", h) != std::string::npos) {
            emitViolation(f, static_cast<int>(li + 1), "R4",
                          "raw `#pragma omp`: OpenMP scheduling is not "
                          "deterministic across hosts; use sched::",
                          out);
        }
    }
}

// --- R5: hygiene ---------------------------------------------------

void
checkR5(SourceFile &f, const std::vector<Token> &t, const Config &cfg,
        Report &out)
{
    // (a) headers need an include guard: `#pragma once` or a leading
    // `#ifndef X` / `#define X` pair.
    if (f.isHeader()) {
        bool guarded = false;
        std::string ifndefName;
        for (std::size_t li = 0; li < f.code.size() && !guarded; ++li) {
            const std::string &s = f.code[li];
            const std::size_t h = s.find('#');
            if (h == std::string::npos)
                continue;
            if (s.find("pragma", h) != std::string::npos &&
                s.find("once", h) != std::string::npos) {
                guarded = true;
            } else if (ifndefName.empty()) {
                const std::size_t p = s.find("ifndef", h);
                if (p != std::string::npos) {
                    std::size_t b = p + 6;
                    while (b < s.size() &&
                           std::isspace(static_cast<unsigned char>(s[b])))
                        ++b;
                    std::size_t e = b;
                    while (e < s.size() &&
                           (std::isalnum(
                                static_cast<unsigned char>(s[e])) ||
                            s[e] == '_'))
                        ++e;
                    ifndefName = s.substr(b, e - b);
                } else {
                    break; // first directive is neither — unguarded
                }
            } else if (s.find("define", h) != std::string::npos &&
                       s.find(ifndefName, h) != std::string::npos) {
                guarded = true;
            } else {
                break; // #ifndef not followed by matching #define
            }
        }
        if (!guarded)
            emitViolation(f, 1, "R5",
                          "header without an include guard (#pragma "
                          "once or #ifndef/#define pair)",
                          out);
    }

    // (b) getenv outside the config shims.
    if (!cfg.r5EnvAllowFiles.count(f.path)) {
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].ident && t[i].text == "getenv" &&
                tokText(t, i + 1) == "(" && stdQualifiedOrBare(t, i)) {
                emitViolation(f, t[i].line, "R5",
                              "getenv outside the config shims: route "
                              "env knobs through the owning subsystem's "
                              "spec parser",
                              out);
            }
        }
    }

    // (c) TODO/FIXME must carry an issue tag (#123 or ISSUE-...).
    for (std::size_t li = 0; li < f.comments.size(); ++li) {
        const std::string &com = f.comments[li];
        const std::size_t at = std::min(com.find("TODO"), com.find("FIXME"));
        if (at == std::string::npos)
            continue;
        bool tagged = com.find("ISSUE") != std::string::npos;
        for (std::size_t k = 0; !tagged && k + 1 < com.size(); ++k)
            if (com[k] == '#' &&
                std::isdigit(static_cast<unsigned char>(com[k + 1])))
                tagged = true;
        if (!tagged)
            emitViolation(f, static_cast<int>(li + 1), "R5",
                          "TODO/FIXME without an issue tag (add "
                          "`(#N)` or `ISSUE-N` so it is trackable)",
                          out);
    }
}

// --- R6: console I/O outside obs/report code ----------------------

void
checkR6(SourceFile &f, const std::vector<Token> &t, const Config &cfg,
        Report &out)
{
    if (!underAny(f.path, cfg.r6Paths) ||
        underAny(f.path, cfg.r6AllowDirs))
        return;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident)
            continue;
        const std::string &id = t[i].text;
        if ((id == "cout" || id == "cerr" || id == "clog") &&
            stdQualifiedOrBare(t, i)) {
            emitViolation(f, t[i].line, "R6",
                          "std::" + id +
                              " in library code: route diagnostics "
                              "through obs:: (metrics/trace/flight) or "
                              "write to a caller-provided stream",
                          out);
        } else if ((id == "printf" || id == "fprintf" ||
                    id == "puts" || id == "fputs") &&
                   tokText(t, i + 1) == "(" &&
                   stdQualifiedOrBare(t, i)) {
            // snprintf/sprintf format into buffers, not the console,
            // and tokenize as distinct identifiers — not matched.
            emitViolation(f, t[i].line, "R6",
                          "call to " + id +
                              "(): console diagnostics are banned in "
                              "library code; use obs:: or return "
                              "strings/streams",
                          out);
        }
    }
}

} // namespace

void
checkFile(SourceFile &f, const Config &cfg, Report &out)
{
    const std::vector<Token> toks = tokenize(f);
    checkR1(f, toks, cfg, out);
    checkR3(f, toks, cfg, out);
    checkR4(f, toks, cfg, out);
    checkR5(f, toks, cfg, out);
    checkR6(f, toks, cfg, out);
}

} // namespace decepticon::lint
