/**
 * @file
 * Per-file token rules for decepticon-lint: R1 (banned
 * nondeterminism), R3 (unordered-iteration hazard), R4 (raw-thread
 * ban), R5 (hygiene, including suppressions naming unknown rule
 * ids), R6 (console-I/O ban in library code).
 * All token-level checks run over the comment/string-blanked code
 * view, so `"std::rand()"` in a log string or a doc comment never
 * fires. The dataflow rules (R7, R8, R10) live in dataflow.cc on top
 * of the symbol index; the cross-TU rules (R2, R9) run later over
 * every file's summary.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>

namespace decepticon::lint {

namespace {

bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

/** True if `path` lies under any of the directory prefixes. */
bool
underAny(const std::string &path, const std::vector<std::string> &dirs)
{
    for (const std::string &d : dirs)
        if (hasPrefix(path, d + "/") || path == d)
            return true;
    return false;
}

const std::string &
tokText(const std::vector<Token> &t, std::size_t i)
{
    static const std::string empty;
    return i < t.size() ? t[i].text : empty;
}

/** Is token i qualified as std::X (directly or via nested ::)? Bare
 *  (unqualified) uses also count — `using namespace std` exists — but
 *  `foo::X` / `obj.X` / `obj->X` do not. */
bool
stdQualifiedOrBare(const std::vector<Token> &t, std::size_t i)
{
    if (i >= 2 && t[i - 1].text == "::")
        return t[i - 2].text == "std";
    if (i >= 1 && (t[i - 1].text == "." || t[i - 1].text == ">"))
        return false; // member access (`->` tokenizes as `-` `>`)
    return true;
}

bool
isUnorderedContainer(const std::string &id)
{
    return id == "unordered_map" || id == "unordered_set" ||
           id == "unordered_multimap" || id == "unordered_multiset";
}

/** Skip a balanced <...> template argument list starting at t[i]
 *  (which must be "<"). Returns the index one past the closing ">",
 *  or i if the list never closes. */
std::size_t
skipTemplateArgs(const std::vector<Token> &t, std::size_t i)
{
    if (tokText(t, i) != "<")
        return i;
    int depth = 0;
    std::size_t k = i;
    for (; k < t.size(); ++k) {
        if (t[k].text == "<")
            ++depth;
        else if (t[k].text == ">" && --depth == 0)
            return k + 1;
        else if (t[k].text == ";")
            break; // statement ended: was a comparison, not a template
    }
    return i;
}

// --- R1: banned nondeterminism ------------------------------------

void
checkR1(const SourceFile &f, const std::vector<Token> &t,
        const Config &cfg, FileSummary &s)
{
    if (cfg.r1AllowFiles.count(f.path))
        return;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident)
            continue;
        const std::string &id = t[i].text;
        if ((id == "rand" || id == "srand") && tokText(t, i + 1) == "(" &&
            stdQualifiedOrBare(t, i)) {
            emitLocal(s, t[i].line, "R1",
                      "call to " + id +
                          "(): use util::Rng (seed-derived) instead");
        } else if (id == "random_device" && stdQualifiedOrBare(t, i)) {
            emitLocal(s, t[i].line, "R1",
                      "std::random_device is entropy, not "
                      "reproducible: derive seeds via util::Rng::split");
        } else if (id == "time" && tokText(t, i + 1) == "(" &&
                   stdQualifiedOrBare(t, i)) {
            const std::string &arg = tokText(t, i + 2);
            if (arg == ")" || ((arg == "0" || arg == "NULL" ||
                                arg == "nullptr") &&
                               tokText(t, i + 3) == ")")) {
                emitLocal(s, t[i].line, "R1",
                          "wall-clock time() call: timestamps must "
                          "come from obs::SteadyClock");
            }
        } else if ((id == "steady_clock" || id == "system_clock" ||
                    id == "high_resolution_clock") &&
                   tokText(t, i + 1) == "::" &&
                   tokText(t, i + 2) == "now") {
            emitLocal(s, t[i].line, "R1",
                      id + "::now() outside the clock shim: inject "
                           "obs::Clock so tests can fake time");
        }
    }
}

// --- R3: unordered-iteration hazard -------------------------------

void
checkR3(const SourceFile &f, const std::vector<Token> &t,
        const Config &cfg, FileSummary &s)
{
    if (!underAny(f.path, cfg.r3Paths))
        return;

    // Pass 1: names declared with an unordered container type
    // anywhere in this file (declaration and iteration usually share
    // a file; member declarations in a paired header are out of
    // reach of a single-TU scan and are caught by the token fallback
    // below when the range expression names the container type).
    std::set<std::string> unorderedNames;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident || !isUnorderedContainer(t[i].text))
            continue;
        std::size_t k = skipTemplateArgs(t, i + 1);
        if (k == i + 1)
            continue; // no template args in sight
        // `std::unordered_map<K, V> name` — possibly with &, *, or
        // qualifiers between.
        while (tokText(t, k) == "&" || tokText(t, k) == "*")
            ++k;
        if (k < t.size() && t[k].ident && t[k].text != "const")
            unorderedNames.insert(t[k].text);
    }

    // Pass 2: range-for statements whose range expression names a
    // declared-unordered variable or an unordered container type.
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident || t[i].text != "for" || tokText(t, i + 1) != "(")
            continue;
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t k = i + 1; k < t.size(); ++k) {
            if (t[k].text == "(") {
                ++depth;
            } else if (t[k].text == ")") {
                if (--depth == 0) {
                    close = k;
                    break;
                }
            } else if (t[k].text == ":" && depth == 1 && colon == 0) {
                colon = k;
            }
        }
        if (colon == 0 || close == 0)
            continue; // classic for, or unterminated
        for (std::size_t k = colon + 1; k < close; ++k) {
            if (!t[k].ident)
                continue;
            if (unorderedNames.count(t[k].text) ||
                isUnorderedContainer(t[k].text)) {
                emitLocal(
                    s, t[i].line, "R3",
                    "range-for over unordered container '" + t[k].text +
                        "': iteration order is not deterministic "
                        "(sort keys, use std::map, or justify with "
                        "`// lint: ordered-ok <why>`)");
                break;
            }
        }
    }
}

// --- R4: raw-thread ban -------------------------------------------

void
checkR4(const SourceFile &f, const std::vector<Token> &t,
        const Config &cfg, FileSummary &s)
{
    if (underAny(f.path, cfg.r4AllowDirs))
        return;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident)
            continue;
        const std::string &id = t[i].text;
        const bool stdQual = i >= 2 && t[i - 1].text == "::" &&
                             t[i - 2].text == "std";
        if ((id == "thread" || id == "jthread") && stdQual &&
            tokText(t, i + 1) != "::") {
            // std::thread::id etc. are types, not spawns — allowed.
            emitLocal(s, t[i].line, "R4",
                      "raw std::" + id +
                          ": all parallelism goes through "
                          "sched::ThreadPool (deterministic, "
                          "DECEPTICON_THREADS-sized)");
        } else if (id == "async" && stdQual) {
            emitLocal(s, t[i].line, "R4",
                      "std::async spawns unmanaged threads: use "
                      "sched::parallelFor / ThreadPool");
        }
    }
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        const std::size_t h = line.find('#');
        if (h == std::string::npos)
            continue;
        if (line.find("pragma", h) != std::string::npos &&
            line.find(" omp", h) != std::string::npos) {
            emitLocal(s, static_cast<int>(li + 1), "R4",
                      "raw `#pragma omp`: OpenMP scheduling is not "
                      "deterministic across hosts; use sched::");
        }
    }
}

// --- R5: hygiene ---------------------------------------------------

void
checkR5(const SourceFile &f, const std::vector<Token> &t,
        const Config &cfg, FileSummary &s)
{
    // (a) headers need an include guard: `#pragma once` or a leading
    // `#ifndef X` / `#define X` pair.
    if (f.isHeader()) {
        bool guarded = false;
        std::string ifndefName;
        for (std::size_t li = 0; li < f.code.size() && !guarded; ++li) {
            const std::string &line = f.code[li];
            const std::size_t h = line.find('#');
            if (h == std::string::npos)
                continue;
            if (line.find("pragma", h) != std::string::npos &&
                line.find("once", h) != std::string::npos) {
                guarded = true;
            } else if (ifndefName.empty()) {
                const std::size_t p = line.find("ifndef", h);
                if (p != std::string::npos) {
                    std::size_t b = p + 6;
                    while (b < line.size() &&
                           std::isspace(
                               static_cast<unsigned char>(line[b])))
                        ++b;
                    std::size_t e = b;
                    while (e < line.size() &&
                           (std::isalnum(
                                static_cast<unsigned char>(line[e])) ||
                            line[e] == '_'))
                        ++e;
                    ifndefName = line.substr(b, e - b);
                } else {
                    break; // first directive is neither — unguarded
                }
            } else if (line.find("define", h) != std::string::npos &&
                       line.find(ifndefName, h) != std::string::npos) {
                guarded = true;
            } else {
                break; // #ifndef not followed by matching #define
            }
        }
        if (!guarded)
            emitLocal(s, 1, "R5",
                      "header without an include guard (#pragma "
                      "once or #ifndef/#define pair)");
    }

    // (b) getenv outside the config shims.
    if (!cfg.r5EnvAllowFiles.count(f.path)) {
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].ident && t[i].text == "getenv" &&
                tokText(t, i + 1) == "(" && stdQualifiedOrBare(t, i)) {
                emitLocal(s, t[i].line, "R5",
                          "getenv outside the config shims: route "
                          "env knobs through the owning subsystem's "
                          "spec parser");
            }
        }
    }

    // (c) TODO/FIXME must carry an issue tag (#123 or ISSUE-...).
    for (std::size_t li = 0; li < f.comments.size(); ++li) {
        const std::string &com = f.comments[li];
        const std::size_t at = std::min(com.find("TODO"), com.find("FIXME"));
        if (at == std::string::npos)
            continue;
        bool tagged = com.find("ISSUE") != std::string::npos;
        for (std::size_t k = 0; !tagged && k + 1 < com.size(); ++k)
            if (com[k] == '#' &&
                std::isdigit(static_cast<unsigned char>(com[k + 1])))
                tagged = true;
        if (!tagged)
            emitLocal(s, static_cast<int>(li + 1), "R5",
                      "TODO/FIXME without an issue tag (add "
                      "`(#N)` or `ISSUE-N` so it is trackable)");
    }

    // (d) suppressions naming a rule id the tool does not have are an
    // error, never silently inert: a typo'd id would otherwise look
    // like a working suppression while the real violation escapes.
    for (const auto &[line, badRule] : f.badSuppressions) {
        emitLocal(s, line, "R5",
                  "suppression names unknown rule id '" + badRule +
                      "' (valid ids are R1..R10) — fix the id or "
                      "remove the comment");
    }
}

// --- R6: console I/O outside obs/report code ----------------------

void
checkR6(const SourceFile &f, const std::vector<Token> &t,
        const Config &cfg, FileSummary &s)
{
    if (!underAny(f.path, cfg.r6Paths) ||
        underAny(f.path, cfg.r6AllowDirs))
        return;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident)
            continue;
        const std::string &id = t[i].text;
        if ((id == "cout" || id == "cerr" || id == "clog") &&
            stdQualifiedOrBare(t, i)) {
            emitLocal(s, t[i].line, "R6",
                      "std::" + id +
                          " in library code: route diagnostics "
                          "through obs:: (metrics/trace/flight) or "
                          "write to a caller-provided stream");
        } else if ((id == "printf" || id == "fprintf" ||
                    id == "puts" || id == "fputs") &&
                   tokText(t, i + 1) == "(" &&
                   stdQualifiedOrBare(t, i)) {
            // snprintf/sprintf format into buffers, not the console,
            // and tokenize as distinct identifiers — not matched.
            emitLocal(s, t[i].line, "R6",
                      "call to " + id +
                          "(): console diagnostics are banned in "
                          "library code; use obs:: or return "
                          "strings/streams");
        }
    }
}

} // namespace

void
checkFileRules(const SourceFile &f, const std::vector<Token> &toks,
               const Config &cfg, FileSummary &s)
{
    checkR1(f, toks, cfg, s);
    checkR3(f, toks, cfg, s);
    checkR4(f, toks, cfg, s);
    checkR5(f, toks, cfg, s);
    checkR6(f, toks, cfg, s);
}

} // namespace decepticon::lint
