/**
 * @file
 * File loading and pre-processing for decepticon-lint: splits a
 * translation unit into a raw view, a code view with comments and
 * string/char literals blanked (line structure preserved, so rule
 * hits report real line numbers), a per-line comment text view, and
 * the parsed suppression comments. Also home of the suppression
 * matching shared by the per-file and cross-TU emit paths.
 */

#include "lint.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace decepticon::lint {

namespace {

/** Lexer state carried across lines. */
enum class Mode
{
    Code,
    BlockComment,
    String,
    Char,
    RawString,
};

bool
startsWith(const std::string &s, std::size_t i, const char *lit)
{
    for (std::size_t k = 0; lit[k]; ++k)
        if (i + k >= s.size() || s[i + k] != lit[k])
            return false;
    return true;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strip leading separator punctuation from a justification ("-",
 *  "--", ":", an em dash) so `// lint: ordered-ok -- reason` and
 *  `// lint: ordered-ok reason` read the same. */
std::string
trimJustification(std::string s)
{
    s = trim(s);
    std::size_t b = 0;
    while (b < s.size() &&
           (s[b] == '-' || s[b] == ':' || static_cast<unsigned char>(s[b]) >= 0x80))
        ++b;
    return trim(s.substr(b));
}

enum class ParseResult
{
    NotASuppression,
    Ok,
    UnknownRule, ///< `suppress(...)` naming a rule id we don't have
};

/** Parse the payload after "lint:" / "lint-file:" into (rule,
 *  justification). Accepts `suppress(Rn) why` for R1..R10 and the R3
 *  alias `ordered-ok why`. A `suppress(...)` with any other id is an
 *  error (UnknownRule), never silently inert. */
ParseResult
parseSuppression(const std::string &payload, Suppression &out,
                 std::string *badRule)
{
    std::string p = trim(payload);
    if (startsWith(p, 0, "ordered-ok")) {
        out.rule = "R3";
        out.justification = trimJustification(p.substr(10));
        return ParseResult::Ok;
    }
    if (startsWith(p, 0, "suppress(")) {
        std::size_t close = p.find(')');
        if (close == std::string::npos)
            return ParseResult::NotASuppression;
        const std::string rule = trim(p.substr(9, close - 9));
        bool valid = rule.size() >= 2 && rule[0] == 'R';
        int n = 0;
        for (std::size_t k = 1; valid && k < rule.size(); ++k) {
            if (!std::isdigit(static_cast<unsigned char>(rule[k])))
                valid = false;
            else
                n = n * 10 + (rule[k] - '0');
        }
        if (!valid || n < 1 || n > 10) {
            if (badRule)
                *badRule = rule;
            return ParseResult::UnknownRule;
        }
        out.rule = rule;
        out.justification = trimJustification(p.substr(close + 1));
        return ParseResult::Ok;
    }
    return ParseResult::NotASuppression;
}

} // namespace

bool
SourceFile::isHeader() const
{
    auto ends = [this](const char *suf) {
        std::string s(suf);
        return path.size() >= s.size() &&
               path.compare(path.size() - s.size(), s.size(), s) == 0;
    };
    return ends(".hh") || ends(".h") || ends(".hpp");
}

bool
loadSource(const std::string &absPath, const std::string &relPath,
           SourceFile &out)
{
    std::ifstream in(absPath, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    loadSourceFromString(buf.str(), relPath, out);
    return true;
}

void
loadSourceFromString(const std::string &text, const std::string &relPath,
                     SourceFile &out)
{
    out = SourceFile{};
    out.path = relPath;

    // Split into lines (tolerate missing trailing newline and CRLF).
    std::string line;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == '\n') {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (i == text.size() && line.empty())
                break;
            out.raw.push_back(line);
            line.clear();
        } else {
            line += text[i];
        }
    }

    // Blank comments and literal contents, keeping delimiters and
    // line lengths so columns/lines in the code view match the raw
    // view. Comment text is preserved separately per line.
    Mode mode = Mode::Code;
    std::string rawDelim; // raw-string delimiter, e.g. `)foo"`
    out.code.resize(out.raw.size());
    out.comments.resize(out.raw.size());
    for (std::size_t li = 0; li < out.raw.size(); ++li) {
        const std::string &src = out.raw[li];
        std::string &code = out.code[li];
        std::string &com = out.comments[li];
        code.assign(src.size(), ' ');
        for (std::size_t i = 0; i < src.size();) {
            switch (mode) {
            case Mode::Code:
                if (startsWith(src, i, "//")) {
                    com.append(src, i, std::string::npos);
                    i = src.size();
                } else if (startsWith(src, i, "/*")) {
                    mode = Mode::BlockComment;
                    i += 2;
                } else if (startsWith(src, i, "R\"") ||
                           startsWith(src, i, "LR\"") ||
                           startsWith(src, i, "uR\"") ||
                           startsWith(src, i, "UR\"")) {
                    // R"delim( ... )delim"
                    std::size_t q = src.find('"', i);
                    std::size_t open = src.find('(', q);
                    if (open == std::string::npos) {
                        code[i] = src[i];
                        ++i;
                        break;
                    }
                    rawDelim = ")" + src.substr(q + 1, open - q - 1) + "\"";
                    for (std::size_t k = i; k <= open; ++k)
                        code[k] = src[k];
                    i = open + 1;
                    mode = Mode::RawString;
                } else if (src[i] == '"') {
                    code[i] = '"';
                    ++i;
                    mode = Mode::String;
                } else if (src[i] == '\'' && i > 0 &&
                           (std::isalnum(static_cast<unsigned char>(
                                src[i - 1])) ||
                            src[i - 1] == '_')) {
                    // digit separator (1'000'000), not a char literal
                    code[i] = src[i];
                    ++i;
                } else if (src[i] == '\'') {
                    code[i] = '\'';
                    ++i;
                    mode = Mode::Char;
                } else {
                    code[i] = src[i];
                    ++i;
                }
                break;
            case Mode::BlockComment:
                if (startsWith(src, i, "*/")) {
                    mode = Mode::Code;
                    i += 2;
                } else {
                    com += src[i];
                    ++i;
                }
                break;
            case Mode::String:
            case Mode::Char: {
                const char delim = mode == Mode::String ? '"' : '\'';
                if (src[i] == '\\') {
                    i += 2;
                } else if (src[i] == delim) {
                    code[i] = delim;
                    ++i;
                    mode = Mode::Code;
                } else {
                    ++i;
                }
                break;
            }
            case Mode::RawString:
                if (startsWith(src, i, rawDelim.c_str())) {
                    i += rawDelim.size();
                    code[i - 1] = '"';
                    mode = Mode::Code;
                } else {
                    ++i;
                }
                break;
            }
        }
        // An unterminated string/char literal cannot span lines.
        if (mode == Mode::String || mode == Mode::Char)
            mode = Mode::Code;
    }

    // Parse suppressions out of the per-line comment text. A line
    // suppression on a comment-only line targets the following line.
    for (std::size_t li = 0; li < out.comments.size(); ++li) {
        const std::string &com = out.comments[li];
        bool fileWide = false;
        std::size_t at = com.find("lint-file:");
        std::size_t payloadStart;
        if (at != std::string::npos) {
            fileWide = true;
            payloadStart = at + 10;
        } else {
            at = com.find("lint:");
            if (at == std::string::npos)
                continue;
            payloadStart = at + 5;
        }
        Suppression s;
        std::string badRule;
        switch (parseSuppression(com.substr(payloadStart), s, &badRule)) {
        case ParseResult::NotASuppression:
            continue;
        case ParseResult::UnknownRule:
            out.badSuppressions.emplace_back(static_cast<int>(li + 1),
                                             badRule);
            continue;
        case ParseResult::Ok:
            break;
        }
        if (fileWide) {
            s.line = static_cast<int>(li + 1);
            out.fileSuppressions.push_back(s);
        } else if (!trim(out.code[li]).empty()) {
            s.line = static_cast<int>(li + 1); // trailing comment
            out.lineSuppressions.push_back(s);
        } else {
            // Comment-only line: target the next code line; the rest
            // of a multi-line comment continues the justification.
            std::size_t j = li + 1;
            while (j < out.code.size() && trim(out.code[j]).empty()) {
                std::string cont = out.comments[j];
                std::size_t b = 0;
                while (b < cont.size() &&
                       (cont[b] == '/' || cont[b] == '*' ||
                        std::isspace(static_cast<unsigned char>(cont[b]))))
                    ++b;
                cont = trim(cont.substr(b));
                if (!cont.empty())
                    s.justification += (s.justification.empty() ? "" : " ") +
                                       cont;
                ++j;
            }
            s.line = static_cast<int>(j + 1);
            out.lineSuppressions.push_back(s);
        }
    }
}

namespace {

/** Shared suppression matching: returns true and fills
 *  *justification if a justified suppression covered the hit (the
 *  matched suppression is flagged via `used` or `usedCross`). */
bool
matchSuppression(FileSummary &s, int line, const std::string &rule,
                 bool cross, std::string *justification)
{
    for (Suppression &sup : s.lineSuppressions) {
        if (sup.line == line && sup.rule == rule) {
            (cross ? sup.usedCross : sup.used) = true;
            if (sup.justification.empty())
                return false; // bare suppression: does not suppress
            *justification = sup.justification;
            return true;
        }
    }
    for (Suppression &sup : s.fileSuppressions) {
        if (sup.rule == rule) {
            (cross ? sup.usedCross : sup.used) = true;
            if (sup.justification.empty())
                return false;
            *justification = sup.justification;
            return true;
        }
    }
    return false;
}

} // namespace

void
emitLocal(FileSummary &s, int line, const std::string &rule,
          const std::string &message)
{
    Violation v;
    v.file = s.path;
    v.line = line;
    v.rule = rule;
    v.message = message;
    if (matchSuppression(s, line, rule, /*cross=*/false, &v.justification))
        s.suppressed.push_back(v);
    else
        s.violations.push_back(v);
}

void
emitCross(FileSummary &s, int line, const std::string &rule,
          const std::string &message, Report &out)
{
    Violation v;
    v.file = s.path;
    v.line = line;
    v.rule = rule;
    v.message = message;
    if (matchSuppression(s, line, rule, /*cross=*/true, &v.justification))
        out.suppressed.push_back(v);
    else
        out.violations.push_back(v);
}

void
checkUnusedSuppressions(const FileSummary &s, Report &out)
{
    for (const Suppression &sup : s.lineSuppressions) {
        if (sup.used || sup.usedCross)
            continue;
        Violation v;
        v.file = s.path;
        v.line = sup.line;
        v.rule = "R5";
        v.message = "stale suppression: no " + sup.rule +
                    " violation on this line (remove the comment)";
        out.violations.push_back(v);
    }
    for (const Suppression &sup : s.fileSuppressions) {
        if (sup.used || sup.usedCross)
            continue;
        Violation v;
        v.file = s.path;
        v.line = sup.line;
        v.rule = "R5";
        v.message = "stale file-wide suppression: no " + sup.rule +
                    " violation in this file (remove the comment)";
        out.violations.push_back(v);
    }
}

} // namespace decepticon::lint
