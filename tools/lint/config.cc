/**
 * @file
 * Config loader for decepticon-lint. The config is a tiny TOML
 * subset — `[section]` headers, `key = value` pairs, bare-value list
 * entries, `#` comments — so the tool stays dependency-free and the
 * file stays hand-editable in review (every new allowlist entry is a
 * one-line diff). The raw config bytes are hashed into
 * Config::sourceHash: it keys the incremental cache, so any config
 * edit invalidates every cached per-file summary at once.
 */

#include "lint.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace decepticon::lint {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

bool
loadConfig(const std::string &path, Config &out, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open config: " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();

    out = Config{};
    out.sourceHash = fnv1a64(bytes);
    std::istringstream is(bytes);
    std::string section;
    std::string line;
    int lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[' && line.back() == ']') {
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        const std::size_t eq = line.find('=');
        const std::string key = trim(eq == std::string::npos
                                         ? line
                                         : line.substr(0, eq));
        const std::string value =
            eq == std::string::npos ? "" : trim(line.substr(eq + 1));

        if (section == "layers") {
            if (eq == std::string::npos) {
                if (error)
                    *error = path + ":" + std::to_string(lineNo) +
                             ": [layers] entries need `module = rank`";
                return false;
            }
            out.layerOf[key] = std::atoi(value.c_str());
        } else if (section == "r2.allow_edges") {
            // "from -> to"
            const std::size_t arrow = key.find("->");
            if (arrow == std::string::npos) {
                if (error)
                    *error = path + ":" + std::to_string(lineNo) +
                             ": [r2.allow_edges] entries are `from -> to`";
                return false;
            }
            out.allowEdges.emplace(trim(key.substr(0, arrow)),
                                   trim(key.substr(arrow + 2)));
        } else if (section == "r1.allow_files") {
            out.r1AllowFiles.insert(key);
        } else if (section == "r3.paths") {
            out.r3Paths.push_back(key);
        } else if (section == "r4.allow_dirs") {
            out.r4AllowDirs.push_back(key);
        } else if (section == "r5.env_allow_files") {
            out.r5EnvAllowFiles.insert(key);
        } else if (section == "r6.paths") {
            out.r6Paths.push_back(key);
        } else if (section == "r6.allow_dirs") {
            out.r6AllowDirs.push_back(key);
        } else if (section == "dataflow.paths") {
            out.dataflowPaths.push_back(key);
        } else if (section == "r9.paths") {
            out.r9Paths.push_back(key);
        } else if (section == "r10.paths") {
            out.r10Paths.push_back(key);
        } else if (section == "r10.allow_dirs") {
            out.r10AllowDirs.push_back(key);
        } else if (section == "scan.roots") {
            out.scanRoots.push_back(key);
        } else {
            if (error)
                *error = path + ":" + std::to_string(lineNo) +
                         ": unknown section [" + section + "]";
            return false;
        }
    }
    if (out.scanRoots.empty())
        out.scanRoots = {"src", "tests", "bench", "examples"};
    return true;
}

} // namespace decepticon::lint
