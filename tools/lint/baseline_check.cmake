# ctest glue for the suppression-baseline gate: run decepticon-lint
# over the repo, then diff the fresh JSON report against the
# committed tools/lint/lint_baseline.json. New suppressions (or any
# unsuppressed violation) fail — landing a suppression requires
# regenerating the baseline so it shows up in review.
#
# Inputs: -DLINT_BIN=... -DREPO_ROOT=... -DOUT_JSON=...

execute_process(
    COMMAND ${LINT_BIN} --root ${REPO_ROOT}
            --config ${REPO_ROOT}/tools/lint/layers.toml
            --quiet --json ${OUT_JSON}
    RESULT_VARIABLE lint_rc)
# A non-zero lint exit just means violations exist; the python diff
# below reports them with the baseline context, so only a missing
# report file is fatal here.
if(NOT EXISTS ${OUT_JSON})
    message(FATAL_ERROR "decepticon-lint produced no report "
                        "(exit ${lint_rc})")
endif()

find_program(PYTHON3 python3 REQUIRED)
execute_process(
    COMMAND ${PYTHON3} ${REPO_ROOT}/bench/bench_compare.py --lint-report
            ${REPO_ROOT}/tools/lint/lint_baseline.json ${OUT_JSON}
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "lint report deviates from committed baseline")
endif()
