/**
 * @file
 * Symbol indexer for decepticon-lint v2: a single pass over the
 * blanked token stream recovers just enough structure for the
 * dataflow rules — function definitions with body ranges, lambda
 * scopes with parsed capture lists, parallel-task marking
 * (lambdas passed to parallelFor/parallelForRange), Rng and
 * float-accumulator lvalue declarations, and per-function lock
 * acquisition sequences with the calls made while holding them.
 *
 * Everything here is a deliberate heuristic over tokens, not a
 * parser: the repo's house style (no function-like macros in src/,
 * no K&R definitions, guards via lint itself) keeps the patterns
 * reliable, and every rule built on top reports through the
 * suppression machinery so a justified exception is one comment.
 */

#include "lint.hh"

#include <cctype>

namespace decepticon::lint {

std::vector<Token>
tokenize(const SourceFile &f)
{
    std::vector<Token> toks;
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &s = f.code[li];
        const int line = static_cast<int>(li + 1);
        for (std::size_t i = 0; i < s.size();) {
            const unsigned char c = static_cast<unsigned char>(s[i]);
            if (std::isspace(c)) {
                ++i;
            } else if (std::isalpha(c) || c == '_') {
                std::size_t b = i;
                while (i < s.size() &&
                       (std::isalnum(static_cast<unsigned char>(s[i])) ||
                        s[i] == '_'))
                    ++i;
                toks.push_back({s.substr(b, i - b), line, true});
            } else if (std::isdigit(c)) {
                std::size_t b = i;
                while (i < s.size() &&
                       (std::isalnum(static_cast<unsigned char>(s[i])) ||
                        s[i] == '.'))
                    ++i;
                toks.push_back({s.substr(b, i - b), line, false});
            } else if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
                toks.push_back({"::", line, false});
                i += 2;
            } else {
                toks.push_back({std::string(1, s[i]), line, false});
                ++i;
            }
        }
    }
    return toks;
}

namespace {

const std::string &
tokText(const std::vector<Token> &t, std::size_t i)
{
    static const std::string empty;
    return i < t.size() ? t[i].text : empty;
}

bool
isKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",       "for",      "while",     "switch",   "return",
        "sizeof",   "alignof",  "alignas",   "catch",    "new",
        "delete",   "throw",    "else",      "do",       "case",
        "default",  "break",    "continue",  "goto",     "using",
        "typedef",  "template", "typename",  "class",    "struct",
        "enum",     "union",    "namespace", "public",   "private",
        "protected", "operator", "decltype", "noexcept", "static_assert",
        "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
        "co_await", "co_return", "co_yield", "requires",
    };
    return kw.count(s) != 0;
}

/** Index of the ')' matching the '(' at `open`, or t.size(). */
std::size_t
matchParen(const std::vector<Token> &t, std::size_t open)
{
    int depth = 0;
    for (std::size_t k = open; k < t.size(); ++k) {
        if (t[k].text == "(")
            ++depth;
        else if (t[k].text == ")" && --depth == 0)
            return k;
    }
    return t.size();
}

/** Index of the '}' matching the '{' at `open`, or t.size(). */
std::size_t
matchBrace(const std::vector<Token> &t, std::size_t open)
{
    int depth = 0;
    for (std::size_t k = open; k < t.size(); ++k) {
        if (t[k].text == "{")
            ++depth;
        else if (t[k].text == "}" && --depth == 0)
            return k;
    }
    return t.size();
}

/** Index of the ']' matching the '[' at `open`, or t.size(). */
std::size_t
matchBracket(const std::vector<Token> &t, std::size_t open)
{
    int depth = 0;
    for (std::size_t k = open; k < t.size(); ++k) {
        if (t[k].text == "[")
            ++depth;
        else if (t[k].text == "]" && --depth == 0)
            return k;
    }
    return t.size();
}

/** Skip a balanced <...> template argument list starting at t[i]
 *  (which must be "<"). Returns one past the closing ">", or i if
 *  the list never closes before a ';'. */
std::size_t
skipTemplateArgs(const std::vector<Token> &t, std::size_t i)
{
    if (tokText(t, i) != "<")
        return i;
    int depth = 0;
    for (std::size_t k = i; k < t.size(); ++k) {
        if (t[k].text == "<")
            ++depth;
        else if (t[k].text == ">" && --depth == 0)
            return k + 1;
        else if (t[k].text == ";")
            break; // statement ended: was a comparison, not a template
    }
    return i;
}

/** Number of arguments inside ( open .. close ): top-level commas
 *  plus one, zero when empty. Brackets and braces (lambda bodies,
 *  init lists) shield their commas. */
int
countArgs(const std::vector<Token> &t, std::size_t open, std::size_t close)
{
    if (close <= open + 1)
        return 0;
    int paren = 0, brace = 0, bracket = 0, commas = 0;
    for (std::size_t k = open; k < close; ++k) {
        const std::string &x = t[k].text;
        if (x == "(")
            ++paren;
        else if (x == ")")
            --paren;
        else if (x == "{")
            ++brace;
        else if (x == "}")
            --brace;
        else if (x == "[")
            ++bracket;
        else if (x == "]")
            --bracket;
        else if (x == "," && paren == 1 && brace == 0 && bracket == 0)
            ++commas;
    }
    return commas + 1;
}

/** Detect function definitions: `name ( ... ) [specifiers |
 *  ctor-init-list] {`. Control-flow keywords are excluded; a body
 *  must follow or the candidate is a declaration/call. */
void
findFunctions(const std::vector<Token> &t, TuIndex &out)
{
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident || isKeyword(t[i].text) || t[i + 1].text != "(")
            continue;
        // `.name(` / `->name(` are member calls, never definitions.
        if (i >= 1 && (t[i - 1].text == "." || t[i - 1].text == ">"))
            continue;
        const std::size_t close = matchParen(t, i + 1);
        if (close >= t.size())
            continue;
        std::size_t k = close + 1;
        bool body = false;
        // Skip trailing specifiers / trailing return / ctor-init.
        while (k < t.size()) {
            const std::string &x = t[k].text;
            if (x == "{") {
                body = true;
                break;
            }
            if (x == ";" || x == "=" || x == "," || x == ")" ||
                x == "]" || x == "}")
                break; // declaration, call, or initializer — no body
            if (x == ":") {
                // Constructor init list: `ident (args)` or
                // `ident {args}` entries, comma-separated, then `{`.
                ++k;
                bool ok = true;
                while (k < t.size() && ok) {
                    while (k < t.size() &&
                           (t[k].ident || t[k].text == "::" ||
                            t[k].text == "<" || t[k].text == ">"))
                        ++k;
                    if (tokText(t, k) == "(")
                        k = matchParen(t, k) + 1;
                    else if (tokText(t, k) == "{")
                        k = matchBrace(t, k) + 1;
                    else
                        ok = false;
                    if (ok && tokText(t, k) == ",")
                        ++k;
                    else
                        break;
                }
                if (ok && tokText(t, k) == "{")
                    body = true;
                break;
            }
            if (x == "<") {
                const std::size_t n = skipTemplateArgs(t, k);
                k = n == k ? k + 1 : n;
                continue;
            }
            if (t[k].ident || x == "::" || x == "&" || x == "*" ||
                x == "-" || x == ">" || x == "[" || x == "]") {
                ++k;
                continue;
            }
            break;
        }
        if (!body)
            continue;
        TuIndex::FnDef fd;
        fd.name = t[i].text;
        fd.arity = countArgs(t, i + 1, close);
        fd.line = t[i].line;
        fd.bodyBegin = k;
        fd.bodyEnd = matchBrace(t, k);
        out.functions.push_back(fd);
    }
}

/** Parse lambda capture lists and body ranges. A '[' introduces a
 *  lambda when the previous token cannot end an expression (so
 *  `arr[i]` and `f()[0]` stay subscripts); `[[attr]]` is skipped. */
void
findLambdas(const std::vector<Token> &t, TuIndex &out)
{
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].text != "[")
            continue;
        if (tokText(t, i + 1) == "[")
            continue; // [[attribute]]
        if (i > 0) {
            const Token &p = t[i - 1];
            const bool prevEndsExpr =
                (p.ident && !isKeyword(p.text)) || p.text == ")" ||
                p.text == "]" ||
                (!p.text.empty() &&
                 std::isdigit(static_cast<unsigned char>(p.text[0])));
            if (prevEndsExpr)
                continue; // subscript
        }
        const std::size_t close = matchBracket(t, i);
        if (close >= t.size())
            continue;
        // Locate the body: optional (params), optional specifiers,
        // then '{'. Anything else means this was not a lambda.
        std::size_t k = close + 1;
        if (tokText(t, k) == "(")
            k = matchParen(t, k) + 1;
        while (k < t.size()) {
            const std::string &x = t[k].text;
            if (x == "{")
                break;
            if (x == "mutable" || x == "noexcept" || x == "constexpr" ||
                x == "->" || x == "-" || x == ">" || x == "::" ||
                x == "&" || x == "*" || t[k].ident) {
                ++k;
                continue;
            }
            if (x == "(") { // noexcept(...) operand
                k = matchParen(t, k) + 1;
                continue;
            }
            if (x == "<") {
                const std::size_t n = skipTemplateArgs(t, k);
                k = n == k ? k + 1 : n;
                continue;
            }
            break;
        }
        if (tokText(t, k) != "{")
            continue;

        LambdaInfo lam;
        lam.introTok = i;
        lam.line = t[i].line;
        lam.bodyBegin = k;
        lam.bodyEnd = matchBrace(t, k);

        // Split the capture list on top-level commas.
        std::size_t part = i + 1;
        while (part < close) {
            std::size_t end = part;
            int paren = 0, bracket = 0, brace = 0;
            while (end < close) {
                const std::string &x = t[end].text;
                if (x == "(")
                    ++paren;
                else if (x == ")")
                    --paren;
                else if (x == "[")
                    ++bracket;
                else if (x == "]")
                    --bracket;
                else if (x == "{")
                    ++brace;
                else if (x == "}")
                    --brace;
                else if (x == "," && !paren && !bracket && !brace)
                    break;
                ++end;
            }
            // Classify tokens [part, end).
            const std::size_t n = end - part;
            if (n == 1 && t[part].text == "&") {
                lam.defaultRef = true;
            } else if (n == 1 && t[part].text == "=") {
                lam.defaultCopy = true;
            } else if (n >= 1 && t[part].text == "this") {
                // captures *this members; out of scope here
            } else if (n >= 2 && t[part].text == "*" &&
                       t[part + 1].text == "this") {
                // by-value *this
            } else if (n >= 2 && t[part].text == "&" && t[part + 1].ident) {
                const std::string name = t[part + 1].text;
                if (n == 2) {
                    lam.refCaptures.insert(name);
                } else if (tokText(t, part + 2) == "=") {
                    // [&alias = expr]: reference semantics onto the
                    // first identifier of the init expression.
                    for (std::size_t q = part + 3; q < end; ++q)
                        if (t[q].ident && !isKeyword(t[q].text)) {
                            lam.refAliases[name] = t[q].text;
                            break;
                        }
                }
            } else if (n >= 1 && t[part].ident) {
                const std::string name = t[part].text;
                if (n == 1) {
                    lam.copyCaptures.insert(name);
                } else if (tokText(t, part + 1) == "=") {
                    // [p = &expr] shares by pointer; [c = expr] is a
                    // per-lambda copy (still one object across all
                    // lanes, but operator() const blocks mutation).
                    bool addrOf = false;
                    std::string target;
                    for (std::size_t q = part + 2; q < end; ++q) {
                        if (t[q].text == "&")
                            addrOf = true;
                        else if (t[q].ident && !isKeyword(t[q].text) &&
                                 target.empty())
                            target = t[q].text;
                    }
                    if (addrOf && !target.empty())
                        lam.refAliases[name] = target;
                    else if (!target.empty())
                        lam.copyCaptures.insert(name);
                }
            }
            part = end + 1;
        }
        out.lambdas.push_back(lam);
    }
}

/** Mark lambdas appearing in the argument list of a
 *  parallelFor/parallelForRange call (free, namespace-qualified, or
 *  a ThreadPool member call — the callee identifier is what
 *  matters). Nested lambdas inside the task body are conservatively
 *  parallel too: they run on the worker. */
void
markParallelTasks(const std::vector<Token> &t, TuIndex &out)
{
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident ||
            (t[i].text != "parallelFor" && t[i].text != "parallelForRange") ||
            t[i + 1].text != "(")
            continue;
        const std::size_t close = matchParen(t, i + 1);
        for (LambdaInfo &lam : out.lambdas)
            if (lam.introTok > i + 1 && lam.introTok < close)
                lam.parallelTask = true;
    }
}

} // namespace

void
collectTypedDecls(const std::vector<Token> &t, std::size_t begin,
                  std::size_t end, std::set<std::string> &rngNames,
                  std::set<std::string> &rngPtrs,
                  std::set<std::string> &accums)
{
    for (std::size_t i = begin; i < end && i < t.size(); ++i) {
        if (!t[i].ident)
            continue;
        const std::string &ty = t[i].text;
        const bool isRng = ty == "Rng";
        const bool isAccum = ty == "float" || ty == "double" ||
                             ty == "Tensor";
        if (!isRng && !isAccum)
            continue;
        // `vector<double>` / `static_cast<double>`: the type token
        // inside template args never declares a name (next token is
        // `>` or `,`, not a declarator).
        std::size_t k = i + 1;
        bool ptr = false;
        while (tokText(t, k) == "&" || tokText(t, k) == "*") {
            ptr = ptr || t[k].text == "*";
            ++k;
        }
        if (k >= end || !t[k].ident || isKeyword(t[k].text) ||
            t[k].text == "const")
            continue;
        const std::string &nxt = tokText(t, k + 1);
        if (nxt != ";" && nxt != "=" && nxt != "{" && nxt != "(" &&
            nxt != "," && nxt != ")")
            continue;
        if (isRng)
            (ptr ? rngPtrs : rngNames).insert(t[k].text);
        else if (!ptr)
            accums.insert(t[k].text);
    }
}

namespace {

/** Last identifier of the argument tokens [b, e) — the canonical
 *  lock name for `mu_`, `this->mu_`, `shards_[i]->mu`, ... */
std::string
lastIdentOf(const std::vector<Token> &t, std::size_t b, std::size_t e)
{
    std::string name;
    for (std::size_t k = b; k < e; ++k)
        if (t[k].ident && !isKeyword(t[k].text))
            name = t[k].text;
    return name;
}

/** Per-function lock scan: acquisition sequences (scope-aware via
 *  brace depth), intra-function order edges, and calls made while
 *  holding at least one lock. */
void
scanLocks(const std::vector<Token> &t, const TuIndex::FnDef &fd,
          FunctionInfo &out)
{
    out.name = fd.name;
    out.arity = fd.arity;
    out.line = fd.line;

    struct Held
    {
        std::string name;
        int depth;
    };
    std::vector<Held> held;
    std::set<std::string> acquiredSet;
    int depth = 0;

    for (std::size_t i = fd.bodyBegin; i < fd.bodyEnd && i < t.size();
         ++i) {
        const std::string &x = t[i].text;
        if (x == "{") {
            ++depth;
            continue;
        }
        if (x == "}") {
            --depth;
            while (!held.empty() && held.back().depth > depth)
                held.pop_back();
            continue;
        }
        if (!t[i].ident)
            continue;
        const bool isGuard = x == "lock_guard" || x == "unique_lock" ||
                             x == "scoped_lock";
        if (isGuard && tokText(t, i - 1) != "." ) {
            std::size_t k = i + 1;
            if (tokText(t, k) == "<")
                k = skipTemplateArgs(t, k);
            if (k < t.size() && t[k].ident)
                ++k; // guard variable name (absent for temporaries)
            if (tokText(t, k) != "(")
                continue;
            const std::size_t open = k;
            const std::size_t close = matchParen(t, open);
            // Split args, canonicalize each to its last identifier.
            std::vector<std::string> locks;
            bool deferred = false;
            std::size_t b = open + 1;
            while (b < close) {
                std::size_t e = b;
                int paren = 0, bracket = 0;
                while (e < close) {
                    const std::string &y = t[e].text;
                    if (y == "(")
                        ++paren;
                    else if (y == ")")
                        --paren;
                    else if (y == "[")
                        ++bracket;
                    else if (y == "]")
                        --bracket;
                    else if (y == "," && !paren && !bracket)
                        break;
                    ++e;
                }
                const std::string name = lastIdentOf(t, b, e);
                if (name == "defer_lock" || name == "try_to_lock")
                    deferred = true;
                else if (name != "adopt_lock" && !name.empty())
                    locks.push_back(name);
                b = e + 1;
            }
            if (!deferred && !locks.empty()) {
                const bool atomic =
                    x == "scoped_lock" && locks.size() > 1;
                const int line = t[i].line;
                for (const Held &h : held)
                    for (const std::string &l : locks)
                        if (h.name != l)
                            out.edges.push_back({h.name, l, line});
                if (!atomic) {
                    // Sequential multi-arg guards (unique_lock has
                    // one mutex anyway) order among themselves too.
                    for (std::size_t a = 0; a + 1 < locks.size(); ++a)
                        for (std::size_t c = a + 1; c < locks.size();
                             ++c)
                            if (locks[a] != locks[c])
                                out.edges.push_back(
                                    {locks[a], locks[c], line});
                }
                for (const std::string &l : locks) {
                    held.push_back({l, depth});
                    if (acquiredSet.insert(l).second)
                        out.acquired.push_back(l);
                }
            }
            i = close;
            continue;
        }
        // A call while holding a lock feeds one-level propagation.
        // Member calls on another object (`obj.f(`, `ptr->f(`) are
        // excluded: `ring->buf.clear()` must not name-match a
        // same-file `clear()` — only unqualified and `ns::`-qualified
        // calls can resolve to a definition we indexed.
        const std::string &prevTok = i ? t[i - 1].text : x;
        if (!held.empty() && !isKeyword(x) && tokText(t, i + 1) == "(" &&
            prevTok != "." && prevTok != ">") {
            const std::size_t close = matchParen(t, i + 1);
            HeldCall hc;
            hc.callee = x;
            hc.arity = countArgs(t, i + 1, close);
            hc.line = t[i].line;
            for (const Held &h : held)
                hc.held.push_back(h.name);
            out.heldCalls.push_back(hc);
        }
    }
}

} // namespace

TuIndex
buildTuIndex(const SourceFile &f)
{
    TuIndex ix;
    ix.toks = tokenize(f);
    findFunctions(ix.toks, ix);
    findLambdas(ix.toks, ix);
    markParallelTasks(ix.toks, ix);
    collectTypedDecls(ix.toks, 0, ix.toks.size(), ix.rngNames,
                      ix.rngPointers, ix.floatAccums);
    for (const TuIndex::FnDef &fd : ix.functions) {
        FunctionInfo fi;
        scanLocks(ix.toks, fd, fi);
        ix.lockInfo.push_back(std::move(fi));
    }
    return ix;
}

} // namespace decepticon::lint
