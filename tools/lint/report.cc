/**
 * @file
 * Orchestration and rendering for decepticon-lint: deterministic
 * directory walk, cache-aware per-file analysis, the cross-TU
 * passes, stable ordering, and the text/JSON/SARIF renderers. The
 * JSON findings document is byte-identical across runs — no
 * timestamps, no host paths, fully sorted — so it can be diffed
 * against a committed baseline in review
 * (`bench/bench_compare.py --lint-report`); run telemetry (files
 * scanned, cache hits, wall time) rides along as an optional
 * `gauges` object outside that contract.
 */

#include "lint.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace decepticon::lint {

namespace {

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
           ext == ".hh" || ext == ".h" || ext == ".hpp";
}

/** All lintable files under root/<scanRoots>, repo-relative with '/'
 *  separators, sorted — the walk order never depends on the
 *  filesystem's enumeration order. */
std::vector<std::string>
collectFiles(const std::string &root, const Config &cfg)
{
    std::vector<std::string> rel;
    for (const std::string &sub : cfg.scanRoots) {
        const fs::path base = fs::path(root) / sub;
        if (!fs::exists(base))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file() || !lintableFile(entry.path()))
                continue;
            rel.push_back(
                fs::relative(entry.path(), root).generic_string());
        }
    }
    std::sort(rel.begin(), rel.end());
    rel.erase(std::unique(rel.begin(), rel.end()), rel.end());
    return rel;
}

bool
violationLess(const Violation &a, const Violation &b)
{
    if (a.file != b.file)
        return a.file < b.file;
    if (a.line != b.line)
        return a.line < b.line;
    if (a.rule != b.rule)
        return a.rule < b.rule;
    return a.message < b.message;
}

void
jsonEscape(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
renderViolationList(std::ostringstream &os,
                    const std::vector<Violation> &list)
{
    os << "[";
    for (std::size_t i = 0; i < list.size(); ++i) {
        const Violation &v = list[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"file\": ";
        jsonEscape(os, v.file);
        os << ", \"line\": " << v.line << ", \"rule\": ";
        jsonEscape(os, v.rule);
        os << ", \"message\": ";
        jsonEscape(os, v.message);
        if (!v.justification.empty()) {
            os << ", \"justification\": ";
            jsonEscape(os, v.justification);
        }
        os << "}";
    }
    os << (list.empty() ? "]" : "\n  ]");
}

} // namespace

void
finalize(Report &r)
{
    std::sort(r.violations.begin(), r.violations.end(), violationLess);
    std::sort(r.suppressed.begin(), r.suppressed.end(), violationLess);
    r.countsByRule.clear();
    for (const Violation &v : r.violations)
        ++r.countsByRule[v.rule];
}

FileSummary
analyzeFile(const SourceFile &f, const Config &cfg)
{
    FileSummary s;
    s.path = f.path;
    // Suppressions move into the summary first: the rules consume
    // them (marking `used`) as they fire.
    s.lineSuppressions = f.lineSuppressions;
    s.fileSuppressions = f.fileSuppressions;

    const TuIndex ix = buildTuIndex(f);
    checkFileRules(f, ix.toks, cfg, s);
    checkDataflow(f, ix, cfg, s);

    s.includes = quotedIncludes(f);
    s.functions = ix.lockInfo;
    return s;
}

Report
runLint(const std::string &root, const Config &cfg,
        const std::string &cachePath)
{
    const auto t0 = std::chrono::steady_clock::now();
    Report report;

    std::map<std::string, FileSummary> cached;
    if (!cachePath.empty())
        loadCache(cachePath, cfg.sourceHash, cached);

    std::vector<FileSummary> sums;
    for (const std::string &rel : collectFiles(root, cfg)) {
        std::ifstream in((fs::path(root) / rel).string(),
                         std::ios::binary);
        if (!in)
            continue;
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string bytes = buf.str();
        const std::uint64_t hash = fnv1a64(bytes);

        const auto hit = cached.find(rel);
        if (hit != cached.end() && hit->second.contentHash == hash) {
            sums.push_back(hit->second);
            ++report.cacheHits;
            continue;
        }
        SourceFile f;
        loadSourceFromString(bytes, rel, f);
        FileSummary s = analyzeFile(f, cfg);
        s.contentHash = hash;
        sums.push_back(std::move(s));
    }
    report.filesScanned = sums.size();

    // Per-file findings (cached or fresh) feed the report verbatim;
    // the cross-TU passes always run over every summary, so a cache
    // hit can never hide a cross-file regression.
    for (const FileSummary &s : sums) {
        report.violations.insert(report.violations.end(),
                                 s.violations.begin(), s.violations.end());
        report.suppressed.insert(report.suppressed.end(),
                                 s.suppressed.begin(), s.suppressed.end());
    }
    checkIncludeGraph(sums, cfg, report);
    checkLockGraph(sums, cfg, report);
    for (const FileSummary &s : sums)
        checkUnusedSuppressions(s, report);

    if (!cachePath.empty())
        saveCache(cachePath, cfg.sourceHash, sums);

    finalize(report);
    report.durationMicros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return report;
}

std::string
renderText(const Report &r)
{
    std::ostringstream os;
    for (const Violation &v : r.violations)
        os << v.file << ":" << v.line << ": [" << v.rule << "] "
           << v.message << "\n";
    os << r.filesScanned << " files scanned, " << r.violations.size()
       << " violation(s), " << r.suppressed.size() << " suppressed";
    if (r.cacheHits)
        os << ", " << r.cacheHits << " from cache";
    os << "\n";
    return os.str();
}

std::string
renderJson(const Report &r, bool withGauges)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"tool\": \"decepticon-lint\",\n";
    os << "  \"schema_version\": 2,\n";
    os << "  \"files_scanned\": " << r.filesScanned << ",\n";
    if (withGauges) {
        os << "  \"gauges\": {\"lint.files_scanned\": " << r.filesScanned
           << ", \"lint.cache_hits\": " << r.cacheHits
           << ", \"lint.duration_micros\": " << r.durationMicros
           << "},\n";
    }
    os << "  \"counts\": {";
    bool first = true;
    for (const auto &[rule, n] : r.countsByRule) {
        os << (first ? "" : ", ");
        jsonEscape(os, rule);
        os << ": " << n;
        first = false;
    }
    os << "},\n";
    os << "  \"violations\": ";
    renderViolationList(os, r.violations);
    os << ",\n  \"suppressed\": ";
    renderViolationList(os, r.suppressed);
    os << "\n}\n";
    return os.str();
}

namespace {

struct SarifRule
{
    const char *id;
    const char *name;
    const char *text;
};

constexpr SarifRule kSarifRules[] = {
    {"R1", "BannedNondeterminism",
     "std::rand/srand, random_device, argless time(), and raw "
     "chrono clock ::now outside the clock shim"},
    {"R2", "LayeringViolation",
     "quoted #include edge against the declared subsystem partial "
     "order, or a file-level include cycle"},
    {"R3", "UnorderedIteration",
     "range-for over an unordered container in deterministic-tagged "
     "code without an ordered-ok justification"},
    {"R4", "RawThread",
     "std::thread/jthread/async or #pragma omp outside the "
     "scheduler implementation"},
    {"R5", "Hygiene",
     "unguarded header, getenv outside the config shims, untagged "
     "TODO/FIXME, stale suppression, or a suppression naming an "
     "unknown rule id"},
    {"R6", "ConsoleIO",
     "std::cout/cerr/clog or printf-family call in library code"},
    {"R7", "SharedRngInParallelTask",
     "Rng lvalue captured by reference (or Rng pointer captured) "
     "into a parallel task whose body never calls .split()"},
    {"R8", "OrderDependentReduction",
     "+=/-= on a by-reference-captured float/double/Tensor "
     "accumulator inside a parallel task body"},
    {"R9", "LockOrderInversion",
     "cycle in the cross-TU lock-order graph built from "
     "lock_guard/unique_lock/scoped_lock acquisition sequences"},
    {"R10", "UnbalancedObsSpan",
     "raw beginSpan without a matching endSpan on every return "
     "path (RAII ScopedSpan exempt)"},
};

void
sarifResult(std::ostringstream &os, const Violation &v, bool suppressed,
            bool firstResult)
{
    os << (firstResult ? "\n        " : ",\n        ");
    os << "{\"ruleId\": ";
    jsonEscape(os, v.rule);
    os << ", \"level\": " << (suppressed ? "\"note\"" : "\"error\"")
       << ", \"message\": {\"text\": ";
    jsonEscape(os, v.message);
    os << "}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": ";
    jsonEscape(os, v.file);
    os << "}, \"region\": {\"startLine\": " << (v.line > 0 ? v.line : 1)
       << "}}}]";
    if (suppressed) {
        os << ", \"suppressions\": [{\"kind\": \"inSource\", "
              "\"justification\": ";
        jsonEscape(os, v.justification);
        os << "}]";
    }
    os << "}";
}

} // namespace

std::string
renderSarif(const Report &r)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    os << "  \"version\": \"2.1.0\",\n";
    os << "  \"runs\": [{\n";
    os << "    \"tool\": {\"driver\": {\n";
    os << "      \"name\": \"decepticon-lint\",\n";
    os << "      \"rules\": [";
    for (std::size_t i = 0; i < std::size(kSarifRules); ++i) {
        const SarifRule &rule = kSarifRules[i];
        os << (i ? ",\n        " : "\n        ");
        os << "{\"id\": \"" << rule.id << "\", \"name\": \""
           << rule.name << "\", \"shortDescription\": {\"text\": ";
        jsonEscape(os, rule.text);
        os << "}}";
    }
    os << "\n      ]\n";
    os << "    }},\n";
    os << "    \"results\": [";
    bool first = true;
    for (const Violation &v : r.violations) {
        sarifResult(os, v, /*suppressed=*/false, first);
        first = false;
    }
    for (const Violation &v : r.suppressed) {
        sarifResult(os, v, /*suppressed=*/true, first);
        first = false;
    }
    os << (first ? "]\n" : "\n    ]\n");
    os << "  }]\n";
    os << "}\n";
    return os.str();
}

} // namespace decepticon::lint
