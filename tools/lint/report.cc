/**
 * @file
 * Orchestration and rendering for decepticon-lint: deterministic
 * directory walk, rule dispatch, stable ordering, and the text/JSON
 * renderers. The JSON report is byte-identical across runs — no
 * timestamps, no host paths, fully sorted — so it can be diffed
 * against a committed baseline in review
 * (`bench/bench_compare.py --lint-report`).
 */

#include "lint.hh"

#include <algorithm>
#include <filesystem>
#include <sstream>

namespace fs = std::filesystem;

namespace decepticon::lint {

namespace {

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
           ext == ".hh" || ext == ".h" || ext == ".hpp";
}

/** All lintable files under root/<scanRoots>, repo-relative with '/'
 *  separators, sorted — the walk order never depends on the
 *  filesystem's enumeration order. */
std::vector<std::string>
collectFiles(const std::string &root, const Config &cfg)
{
    std::vector<std::string> rel;
    for (const std::string &sub : cfg.scanRoots) {
        const fs::path base = fs::path(root) / sub;
        if (!fs::exists(base))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file() || !lintableFile(entry.path()))
                continue;
            rel.push_back(
                fs::relative(entry.path(), root).generic_string());
        }
    }
    std::sort(rel.begin(), rel.end());
    rel.erase(std::unique(rel.begin(), rel.end()), rel.end());
    return rel;
}

bool
violationLess(const Violation &a, const Violation &b)
{
    if (a.file != b.file)
        return a.file < b.file;
    if (a.line != b.line)
        return a.line < b.line;
    if (a.rule != b.rule)
        return a.rule < b.rule;
    return a.message < b.message;
}

void
jsonEscape(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
renderViolationList(std::ostringstream &os,
                    const std::vector<Violation> &list)
{
    os << "[";
    for (std::size_t i = 0; i < list.size(); ++i) {
        const Violation &v = list[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"file\": ";
        jsonEscape(os, v.file);
        os << ", \"line\": " << v.line << ", \"rule\": ";
        jsonEscape(os, v.rule);
        os << ", \"message\": ";
        jsonEscape(os, v.message);
        if (!v.justification.empty()) {
            os << ", \"justification\": ";
            jsonEscape(os, v.justification);
        }
        os << "}";
    }
    os << (list.empty() ? "]" : "\n  ]");
}

} // namespace

void
finalize(Report &r)
{
    std::sort(r.violations.begin(), r.violations.end(), violationLess);
    std::sort(r.suppressed.begin(), r.suppressed.end(), violationLess);
    r.countsByRule.clear();
    for (const Violation &v : r.violations)
        ++r.countsByRule[v.rule];
}

Report
runLint(const std::string &root, const Config &cfg)
{
    Report report;
    std::vector<SourceFile> files;
    for (const std::string &rel : collectFiles(root, cfg)) {
        SourceFile f;
        if (!loadSource((fs::path(root) / rel).string(), rel, f))
            continue;
        files.push_back(std::move(f));
    }
    report.filesScanned = files.size();
    for (SourceFile &f : files)
        checkFile(f, cfg, report);
    checkIncludeGraph(files, cfg, report);
    for (const SourceFile &f : files)
        checkUnusedSuppressions(f, report);
    finalize(report);
    return report;
}

std::string
renderText(const Report &r)
{
    std::ostringstream os;
    for (const Violation &v : r.violations)
        os << v.file << ":" << v.line << ": [" << v.rule << "] "
           << v.message << "\n";
    os << r.filesScanned << " files scanned, " << r.violations.size()
       << " violation(s), " << r.suppressed.size() << " suppressed\n";
    return os.str();
}

std::string
renderJson(const Report &r)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"tool\": \"decepticon-lint\",\n";
    os << "  \"schema_version\": 1,\n";
    os << "  \"files_scanned\": " << r.filesScanned << ",\n";
    os << "  \"counts\": {";
    bool first = true;
    for (const auto &[rule, n] : r.countsByRule) {
        os << (first ? "" : ", ");
        jsonEscape(os, rule);
        os << ": " << n;
        first = false;
    }
    os << "},\n";
    os << "  \"violations\": ";
    renderViolationList(os, r.violations);
    os << ",\n  \"suppressed\": ";
    renderViolationList(os, r.suppressed);
    os << "\n}\n";
    return os.str();
}

} // namespace decepticon::lint
