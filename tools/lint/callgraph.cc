/**
 * @file
 * R9 for decepticon-lint: lock-order discipline across the repo.
 *
 * Each file's symbol pass distills, per function, the sequence of
 * lock_guard/unique_lock/scoped_lock acquisitions (intra-function
 * order edges: `from` held while acquiring `to`) and the calls made
 * while at least one lock is held. This pass qualifies every lock
 * name with its file path (same-named members like `mu_` in
 * different classes must not merge into one node), adds the
 * intra-function edges, then propagates ONE level through a cross-TU
 * call graph: a call made while holding H, resolved by exact
 * name + arity to a function definition that acquires L, contributes
 * the edge H -> L. Resolution is deliberately conservative — a
 * callee candidate must live in the same file, the same directory,
 * the caller's quoted-include closure, or be the source sibling of a
 * header in that closure — so an unrelated same-named function in a
 * distant subsystem cannot fabricate an edge.
 *
 * A strongly-connected component of two or more nodes in the
 * resulting lock-order graph means two code paths acquire the same
 * mutexes in opposite orders: a potential deadlock. A multi-mutex
 * std::scoped_lock acquires atomically and contributed no internal
 * edges upstream, so the blessed fix pattern stays quiet.
 *
 * Runs over (possibly cached) per-file summaries and is recomputed
 * every run: a cache hit can never hide an ordering regression
 * introduced by a different file.
 */

#include "lint.hh"

#include <algorithm>
#include <functional>

namespace decepticon::lint {

namespace {

bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
underAny(const std::string &path, const std::vector<std::string> &dirs)
{
    for (const std::string &d : dirs)
        if (hasPrefix(path, d + "/") || path == d)
            return true;
    return false;
}

std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

std::string
stemOf(const std::string &path)
{
    const std::size_t dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(0, dot);
}

/** A lock-order edge in the qualified graph. */
struct Edge
{
    std::string to;
    std::size_t sumIdx = 0; ///< summary owning the edge (for anchor)
    int line = 0;
    std::string via; ///< non-empty for call-propagated edges
};

} // namespace

void
checkLockGraph(std::vector<FileSummary> &sums, const Config &cfg,
               Report &out)
{
    if (cfg.r9Paths.empty())
        return;

    // Which summaries participate, and how include targets resolve
    // to summary paths (targets are written src-relative, repo
    // relative, or relative to the including file's directory).
    std::map<std::string, std::size_t> byPath;
    for (std::size_t i = 0; i < sums.size(); ++i)
        byPath[sums[i].path] = i;
    auto resolveInclude = [&](const std::string &fromPath,
                              const std::string &target) -> std::string {
        if (byPath.count("src/" + target))
            return "src/" + target;
        if (byPath.count(target))
            return target;
        const std::string local = dirOf(fromPath) + "/" + target;
        if (byPath.count(local))
            return local;
        return std::string();
    };

    // Transitive quoted-include closure per participating file.
    std::map<std::string, std::set<std::string>> closure;
    std::function<const std::set<std::string> &(const std::string &)>
        closureOf = [&](const std::string &path)
        -> const std::set<std::string> & {
        auto it = closure.find(path);
        if (it != closure.end())
            return it->second;
        auto &cl = closure[path]; // inserted first: cycles terminate
        for (const Include &inc : sums[byPath.at(path)].includes) {
            const std::string to = resolveInclude(path, inc.target);
            if (to.empty() || cl.count(to))
                continue;
            cl.insert(to);
            for (const std::string &t : closureOf(to))
                cl.insert(t);
        }
        return closure[path];
    };

    // Candidate definition sites for calls from `path`: same file,
    // same directory, include closure, or the source sibling of a
    // header in the closure (foo.hh in closure -> foo.cc eligible).
    auto candidateFiles = [&](const std::string &path) {
        std::set<std::size_t> cand;
        const std::string dir = dirOf(path);
        std::set<std::string> siblings;
        for (const std::string &h : closureOf(path))
            siblings.insert(stemOf(h));
        for (std::size_t i = 0; i < sums.size(); ++i) {
            const std::string &p = sums[i].path;
            if (!underAny(p, cfg.r9Paths))
                continue;
            if (p == path || dirOf(p) == dir ||
                closure.at(path).count(p) || siblings.count(stemOf(p)))
                cand.insert(i);
        }
        return cand;
    };

    // Build the qualified lock-order graph. Summaries arrive in
    // sorted path order and functions in file order, so insertion
    // order (and thus first-edge dedup) is deterministic.
    std::map<std::string, std::vector<Edge>> adj;
    std::set<std::string> nodes;
    std::set<std::pair<std::string, std::string>> seenEdge;
    auto addEdge = [&](const std::string &from, const std::string &to,
                       std::size_t sumIdx, int line,
                       const std::string &via) {
        if (from == to)
            return;
        nodes.insert(from);
        nodes.insert(to);
        if (!seenEdge.insert({from, to}).second)
            return;
        adj[from].push_back({to, sumIdx, line, via});
    };

    for (std::size_t i = 0; i < sums.size(); ++i) {
        const FileSummary &s = sums[i];
        if (!underAny(s.path, cfg.r9Paths))
            continue;
        for (const FunctionInfo &fn : s.functions)
            for (const LockEdge &e : fn.edges)
                addEdge(s.path + ":" + e.from, s.path + ":" + e.to, i,
                        e.line, std::string());
    }
    for (std::size_t i = 0; i < sums.size(); ++i) {
        const FileSummary &s = sums[i];
        if (!underAny(s.path, cfg.r9Paths))
            continue;
        std::set<std::size_t> cand; // computed lazily, once per file
        bool haveCand = false;
        for (const FunctionInfo &fn : s.functions) {
            for (const HeldCall &hc : fn.heldCalls) {
                if (hc.held.empty())
                    continue;
                if (!haveCand) {
                    cand = candidateFiles(s.path);
                    haveCand = true;
                }
                for (std::size_t j : cand) {
                    const FileSummary &callee = sums[j];
                    for (const FunctionInfo &g : callee.functions) {
                        if (g.name != hc.callee || g.arity != hc.arity)
                            continue;
                        for (const std::string &l : g.acquired)
                            for (const std::string &h : hc.held)
                                addEdge(s.path + ":" + h,
                                        callee.path + ":" + l, i,
                                        hc.line,
                                        "via " + hc.callee + "() -> " +
                                            callee.path + ":" +
                                            std::to_string(g.line));
                    }
                }
            }
        }
    }

    if (nodes.empty())
        return;

    // Tarjan SCC over the sorted node set with sorted-by-insertion
    // adjacency: deterministic component discovery order.
    std::map<std::string, int> index, lowlink;
    std::set<std::string> onStack;
    std::vector<std::string> stack;
    int counter = 0;
    std::vector<std::vector<std::string>> sccs;
    std::function<void(const std::string &)> strongconnect =
        [&](const std::string &v) {
            index[v] = lowlink[v] = counter++;
            stack.push_back(v);
            onStack.insert(v);
            auto it = adj.find(v);
            if (it != adj.end()) {
                for (const Edge &e : it->second) {
                    if (!index.count(e.to)) {
                        strongconnect(e.to);
                        lowlink[v] = std::min(lowlink[v], lowlink[e.to]);
                    } else if (onStack.count(e.to)) {
                        lowlink[v] = std::min(lowlink[v], index[e.to]);
                    }
                }
            }
            if (lowlink[v] == index[v]) {
                std::vector<std::string> scc;
                for (;;) {
                    const std::string w = stack.back();
                    stack.pop_back();
                    onStack.erase(w);
                    scc.push_back(w);
                    if (w == v)
                        break;
                }
                if (scc.size() > 1)
                    sccs.push_back(std::move(scc));
            }
        };
    for (const std::string &n : nodes)
        if (!index.count(n))
            strongconnect(n);

    // One violation per inverted component, in sorted order,
    // describing a concrete cycle walked from the smallest node.
    std::sort(sccs.begin(), sccs.end(),
              [](const std::vector<std::string> &a,
                 const std::vector<std::string> &b) {
                  return *std::min_element(a.begin(), a.end()) <
                         *std::min_element(b.begin(), b.end());
              });
    for (const std::vector<std::string> &scc : sccs) {
        const std::set<std::string> members(scc.begin(), scc.end());
        const std::string start =
            *std::min_element(scc.begin(), scc.end());

        // Walk a cycle start -> ... -> start inside the component.
        std::vector<const Edge *> path;
        std::set<std::string> visited;
        std::function<bool(const std::string &)> walk =
            [&](const std::string &v) -> bool {
            for (const Edge &e : adj[v]) {
                if (!members.count(e.to))
                    continue;
                if (e.to == start) {
                    path.push_back(&e);
                    return true;
                }
                if (visited.insert(e.to).second) {
                    path.push_back(&e);
                    if (walk(e.to))
                        return true;
                    path.pop_back();
                }
            }
            return false;
        };
        if (!walk(start) || path.empty())
            continue; // unreachable: an SCC always closes a cycle

        std::string desc = "lock-order cycle (potential deadlock): " +
                           start;
        for (const Edge *e : path) {
            desc += " -> " + e->to;
            if (!e->via.empty())
                desc += " [" + e->via + "]";
        }
        desc += " — acquire these mutexes in one global order (or "
                "take them together with std::scoped_lock)";
        const Edge *anchor = path.front();
        emitCross(sums[anchor->sumIdx], anchor->line, "R9", desc, out);
    }
}

} // namespace decepticon::lint
