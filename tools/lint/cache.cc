/**
 * @file
 * Incremental cache for decepticon-lint: per-file summaries keyed by
 * FNV-1a of the file bytes, with the config-bytes hash and a format
 * version in the header so a config edit or tool upgrade invalidates
 * everything at once. The cache stores exactly what the cross-TU
 * passes and the report need — per-file findings, suppressions with
 * their per-file `used` flag, quoted includes, and the R9 function
 * summaries — never raw source, so warm runs skip tokenizing and
 * rule-checking unchanged files while the cross-file passes still
 * see the whole repo.
 *
 * Line-oriented, tab-separated, with tabs/newlines/backslashes
 * escaped inside fields. Parsing is strict: any anomaly (unknown
 * record, wrong field count, bad number) discards the whole cache —
 * it is advisory, never authoritative, and the worst failure mode
 * must be a cold run, not a wrong report.
 */

#include "lint.hh"

#include <fstream>
#include <sstream>

namespace decepticon::lint {

std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

namespace {

constexpr const char *kMagic = "decepticon-lint-cache";
constexpr int kFormatVersion = 2;

std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

bool
unesc(const std::string &s, std::string &out)
{
    out.clear();
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        if (++i >= s.size())
            return false;
        switch (s[i]) {
        case '\\':
            out += '\\';
            break;
        case 't':
            out += '\t';
            break;
        case 'n':
            out += '\n';
            break;
        default:
            return false;
        }
    }
    return true;
}

std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (c == '\t') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

bool
parseInt(const std::string &s, long long &out)
{
    if (s.empty())
        return false;
    out = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        out = out * 10 + (c - '0');
    }
    return true;
}

bool
parseHex(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    out = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        out = out * 16 + static_cast<std::uint64_t>(d);
    }
    return true;
}

std::string
hex(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    do {
        out.insert(out.begin(), digits[v & 0xf]);
        v >>= 4;
    } while (v);
    return out;
}

void
writeSuppression(std::ostream &os, char tag, const Suppression &s)
{
    os << tag << '\t' << s.line << '\t' << (s.used ? 1 : 0) << '\t'
       << esc(s.rule) << '\t' << esc(s.justification) << '\n';
}

void
writeViolation(std::ostream &os, char tag, const Violation &v)
{
    os << tag << '\t' << v.line << '\t' << esc(v.rule) << '\t'
       << esc(v.message) << '\t' << esc(v.justification) << '\n';
}

} // namespace

void
saveCache(const std::string &path, std::uint64_t configHash,
          const std::vector<FileSummary> &sums)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return; // best effort: the next run is just cold
    os << kMagic << '\t' << kFormatVersion << '\t' << hex(configHash)
       << '\n';
    for (const FileSummary &s : sums) {
        os << "F\t" << esc(s.path) << '\t' << hex(s.contentHash) << '\n';
        for (const Suppression &sup : s.lineSuppressions)
            writeSuppression(os, 'S', sup);
        for (const Suppression &sup : s.fileSuppressions)
            writeSuppression(os, 'T', sup);
        for (const Violation &v : s.violations)
            writeViolation(os, 'V', v);
        for (const Violation &v : s.suppressed)
            writeViolation(os, 'W', v);
        for (const Include &inc : s.includes)
            os << "I\t" << inc.line << '\t' << esc(inc.target) << '\n';
        for (const FunctionInfo &fn : s.functions) {
            os << "N\t" << fn.line << '\t' << fn.arity << '\t'
               << esc(fn.name) << '\n';
            for (const std::string &a : fn.acquired)
                os << "A\t" << esc(a) << '\n';
            for (const LockEdge &e : fn.edges)
                os << "E\t" << e.line << '\t' << esc(e.from) << '\t'
                   << esc(e.to) << '\n';
            for (const HeldCall &hc : fn.heldCalls) {
                os << "C\t" << hc.line << '\t' << hc.arity << '\t'
                   << esc(hc.callee);
                for (const std::string &h : hc.held)
                    os << '\t' << esc(h);
                os << '\n';
            }
        }
    }
}

bool
loadCache(const std::string &path, std::uint64_t configHash,
          std::map<std::string, FileSummary> &byPath)
{
    byPath.clear();
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;

    std::string line;
    if (!std::getline(is, line))
        return false;
    {
        const std::vector<std::string> f = splitTabs(line);
        long long ver = 0;
        std::uint64_t hash = 0;
        if (f.size() != 3 || f[0] != kMagic || !parseInt(f[1], ver) ||
            ver != kFormatVersion || !parseHex(f[2], hash) ||
            hash != configHash)
            return false;
    }

    FileSummary *cur = nullptr;
    FunctionInfo *curFn = nullptr;
    auto fail = [&] {
        byPath.clear();
        return false;
    };
    while (std::getline(is, line)) {
        if (line.empty())
            return fail();
        const std::vector<std::string> f = splitTabs(line);
        long long n1 = 0, n2 = 0;
        switch (line[0]) {
        case 'F': {
            std::string p;
            std::uint64_t hash = 0;
            if (f.size() != 3 || !unesc(f[1], p) ||
                !parseHex(f[2], hash) || byPath.count(p))
                return fail();
            cur = &byPath[p];
            cur->path = p;
            cur->contentHash = hash;
            cur->fromCache = true;
            curFn = nullptr;
            break;
        }
        case 'S':
        case 'T': {
            Suppression sup;
            if (!cur || f.size() != 5 || !parseInt(f[1], n1) ||
                !parseInt(f[2], n2) || n2 > 1 ||
                !unesc(f[3], sup.rule) ||
                !unesc(f[4], sup.justification))
                return fail();
            sup.line = static_cast<int>(n1);
            sup.used = n2 != 0;
            (line[0] == 'S' ? cur->lineSuppressions
                            : cur->fileSuppressions)
                .push_back(sup);
            break;
        }
        case 'V':
        case 'W': {
            Violation v;
            if (!cur || f.size() != 5 || !parseInt(f[1], n1) ||
                !unesc(f[2], v.rule) || !unesc(f[3], v.message) ||
                !unesc(f[4], v.justification))
                return fail();
            v.file = cur->path;
            v.line = static_cast<int>(n1);
            (line[0] == 'V' ? cur->violations : cur->suppressed)
                .push_back(v);
            break;
        }
        case 'I': {
            Include inc;
            if (!cur || f.size() != 3 || !parseInt(f[1], n1) ||
                !unesc(f[2], inc.target))
                return fail();
            inc.line = static_cast<int>(n1);
            cur->includes.push_back(inc);
            break;
        }
        case 'N': {
            FunctionInfo fn;
            if (!cur || f.size() != 4 || !parseInt(f[1], n1) ||
                !parseInt(f[2], n2) || !unesc(f[3], fn.name))
                return fail();
            fn.line = static_cast<int>(n1);
            fn.arity = static_cast<int>(n2);
            cur->functions.push_back(fn);
            curFn = &cur->functions.back();
            break;
        }
        case 'A': {
            std::string a;
            if (!curFn || f.size() != 2 || !unesc(f[1], a))
                return fail();
            curFn->acquired.push_back(a);
            break;
        }
        case 'E': {
            LockEdge e;
            if (!curFn || f.size() != 4 || !parseInt(f[1], n1) ||
                !unesc(f[2], e.from) || !unesc(f[3], e.to))
                return fail();
            e.line = static_cast<int>(n1);
            curFn->edges.push_back(e);
            break;
        }
        case 'C': {
            HeldCall hc;
            if (!curFn || f.size() < 4 || !parseInt(f[1], n1) ||
                !parseInt(f[2], n2) || !unesc(f[3], hc.callee))
                return fail();
            hc.line = static_cast<int>(n1);
            hc.arity = static_cast<int>(n2);
            for (std::size_t k = 4; k < f.size(); ++k) {
                std::string h;
                if (!unesc(f[k], h))
                    return fail();
                hc.held.push_back(h);
            }
            curFn->heldCalls.push_back(hc);
            break;
        }
        default:
            return fail();
        }
    }
    return true;
}

} // namespace decepticon::lint
