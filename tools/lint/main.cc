/**
 * @file
 * CLI driver for decepticon-lint.
 *
 *   decepticon-lint --root <repo> [--config <layers.toml>]
 *                   [--json <out.json>] [--sarif <out.sarif>]
 *                   [--cache <file>] [--no-gauges] [--quiet]
 *
 * Prints `file:line: [rule] message` per unsuppressed violation and
 * exits with the violation count (clamped to 125 so it never
 * collides with shell/signal exit codes). `--json` additionally
 * writes the machine-readable report; the findings document is
 * byte-identical across runs, and a `gauges` object carries run
 * telemetry (files scanned, cache hits, wall micros) unless
 * `--no-gauges` asks for the canonical form (baseline
 * regeneration). `--sarif` writes a SARIF 2.1.0 export and
 * `--cache` enables the content-hash incremental cache.
 */

#include "lint.hh"

#include <fstream>
#include <iostream>

int
main(int argc, char **argv)
{
    using namespace decepticon::lint;

    std::string root = ".";
    std::string configPath;
    std::string jsonPath;
    std::string sarifPath;
    std::string cachePath;
    bool quiet = false;
    bool gauges = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "decepticon-lint: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = next("--root");
        } else if (arg == "--config") {
            configPath = next("--config");
        } else if (arg == "--json") {
            jsonPath = next("--json");
        } else if (arg == "--sarif") {
            sarifPath = next("--sarif");
        } else if (arg == "--cache") {
            cachePath = next("--cache");
        } else if (arg == "--no-gauges") {
            gauges = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: decepticon-lint --root <repo> "
                         "[--config <layers.toml>] [--json <out>] "
                         "[--sarif <out>] [--cache <file>] "
                         "[--no-gauges] [--quiet]\n";
            return 0;
        } else {
            std::cerr << "decepticon-lint: unknown argument '" << arg
                      << "'\n";
            return 2;
        }
    }
    if (configPath.empty())
        configPath = root + "/tools/lint/layers.toml";

    Config cfg;
    std::string err;
    if (!loadConfig(configPath, cfg, &err)) {
        std::cerr << "decepticon-lint: " << err << "\n";
        return 2;
    }

    const Report report = runLint(root, cfg, cachePath);

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath, std::ios::binary);
        if (!out) {
            std::cerr << "decepticon-lint: cannot write " << jsonPath
                      << "\n";
            return 2;
        }
        out << renderJson(report, gauges);
    }
    if (!sarifPath.empty()) {
        std::ofstream out(sarifPath, std::ios::binary);
        if (!out) {
            std::cerr << "decepticon-lint: cannot write " << sarifPath
                      << "\n";
            return 2;
        }
        out << renderSarif(report);
    }
    if (!quiet)
        std::cout << renderText(report);

    const std::size_t n = report.violations.size();
    return static_cast<int>(n > 125 ? 125 : n);
}
