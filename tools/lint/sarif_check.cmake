# ctest glue for the SARIF-format gate: run decepticon-lint over the
# bad_repo fixture (every rule fires there) with --sarif and
# byte-compare the export against the committed golden file. The
# SARIF renderer is deterministic by construction, so any diff is a
# real format change and must be landed by regenerating the golden:
#
#   decepticon-lint --root tools/lint/fixtures/bad_repo \
#       --config tools/lint/fixtures/layers.toml --quiet \
#       --sarif tools/lint/fixtures/bad_repo_expected.sarif
#
# Inputs: -DLINT_BIN=... -DFIXTURES=... -DOUT_SARIF=...

execute_process(
    COMMAND ${LINT_BIN} --root ${FIXTURES}/bad_repo
            --config ${FIXTURES}/layers.toml
            --quiet --sarif ${OUT_SARIF}
    RESULT_VARIABLE lint_rc)
# A non-zero exit just means the fixture has violations (it must);
# only a missing export is fatal here.
if(NOT EXISTS ${OUT_SARIF})
    message(FATAL_ERROR "decepticon-lint produced no SARIF export "
                        "(exit ${lint_rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${FIXTURES}/bad_repo_expected.sarif ${OUT_SARIF}
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "SARIF export deviates from the committed golden "
        "(${FIXTURES}/bad_repo_expected.sarif); if the format change "
        "is intentional, regenerate the golden with the command in "
        "sarif_check.cmake")
endif()
