#ifndef LINT_FIXTURE_B_TOP_HH
#define LINT_FIXTURE_B_TOP_HH

namespace fixture_b {

inline int
topValue()
{
    return 1;
}

} // namespace fixture_b

#endif // LINT_FIXTURE_B_TOP_HH
