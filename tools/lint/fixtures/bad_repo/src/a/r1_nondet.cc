// Every banned entropy/wall-clock source once: five R1 hits.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int
entropySoup()
{
    int x = std::rand();
    srand(42u);
    std::random_device rd;
    const long t = time(nullptr);
    const auto n = std::chrono::steady_clock::now();
    return x + static_cast<int>(rd()) + static_cast<int>(t) +
           static_cast<int>(n.time_since_epoch().count());
}
