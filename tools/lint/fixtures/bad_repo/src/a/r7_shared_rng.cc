// R7 positive: a shared Rng captured by reference into a parallel
// task and advanced from every lane — the stream depends on the
// interleaving.
#include <cstdint>
#include <vector>

namespace fixture {

struct Rng
{
    explicit Rng(std::uint64_t seed);
    std::uint64_t nextU64();
    Rng split(std::uint64_t tag) const;
};

void parallelFor(std::size_t n, std::size_t grain, void (*fn)(std::size_t));

void
fillShared(std::vector<std::uint64_t> &out)
{
    Rng rng(7);
    parallelFor(out.size(), 1, [&](std::size_t i) {
        out[i] = rng.nextU64(); // fires R7: same generator, all lanes
    });
}

} // namespace fixture
