// getenv outside the shims plus an untagged to-do marker: two R5
// hits.
#include <cstdlib>

// TODO make this faster somehow
int
rogueEnvRead()
{
    const char *s = std::getenv("ROGUE");
    return s ? 1 : 0;
}
