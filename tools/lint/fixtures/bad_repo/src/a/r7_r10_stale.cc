// R5 positives: one stale suppression per v2 rule id (no matching
// violation on the targeted lines), plus a suppression naming a rule
// id the tool does not have.
#include <cstddef>

namespace fixture {

int
plainArithmetic(int x)
{
    int a = x + 1;     // lint: suppress(R7) nothing parallel here
    int b = a * 2;     // lint: suppress(R8) not a reduction
    int c = b - x;     // lint: suppress(R9) no locks in sight
    int d = c + a;     // lint: suppress(R10) no spans either
    int e = d - b;     // lint: suppress(R42) imaginary rule id
    return e;
}

} // namespace fixture
