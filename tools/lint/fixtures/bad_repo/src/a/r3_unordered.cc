// Unsuppressed range-for over an unordered container: one R3 hit.
#include <string>
#include <unordered_map>
#include <vector>

std::string
joinKeys(const std::unordered_map<std::string, int> &m)
{
    std::string out;
    for (const auto &kv : m)
        out += kv.first;
    return out;
}

int
vectorLoopIsFine(const std::vector<int> &v)
{
    int s = 0;
    for (int x : v)
        s += x;
    return s;
}
