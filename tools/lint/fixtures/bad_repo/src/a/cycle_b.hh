// The other half of the cycle.
#ifndef LINT_FIXTURE_A_CYCLE_B_HH
#define LINT_FIXTURE_A_CYCLE_B_HH

#include "a/cycle_a.hh"

#endif // LINT_FIXTURE_A_CYCLE_B_HH
