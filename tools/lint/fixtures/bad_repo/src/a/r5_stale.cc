// Suppression pathologies: a stale suppression (one R5 hit) and a
// bare justification-free suppression that must NOT suppress (so the
// underlying R1 still fires).
#include <cstdlib>

int
cleanDespiteComment()
{
    // lint: suppress(R1) nothing on the next line actually fires
    return 7;
}

int
bareSuppressionDoesNotHide()
{
    return std::rand(); // lint: suppress(R1)
}
