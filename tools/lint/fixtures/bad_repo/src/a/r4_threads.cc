// Raw parallelism outside src/sched/: three R4 hits.
#include <future>
#include <thread>

void
rogueParallelism()
{
    std::thread t([] {});
    auto f = std::async([] { return 1; });
#pragma omp parallel for
    for (int i = 0; i < 4; ++i) {
    }
    t.join();
    f.get();
}
