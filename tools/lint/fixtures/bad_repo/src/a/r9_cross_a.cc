// R9 positive (cross-TU): holds lockM and calls crossHelper(),
// which r9_cross_b.cc defines to acquire lockN — while the reverse
// chain there acquires lockN and calls backHelper() (defined below)
// to take lockM. Neither file alone has an inversion; the one-level
// call-graph propagation closes the cycle.
#include <mutex>

namespace fixture {

std::mutex lockM;

void crossHelper();

void
holdMThenCross()
{
    std::lock_guard<std::mutex> m(lockM);
    crossHelper();
}

void
backHelper()
{
    std::lock_guard<std::mutex> m(lockM);
}

} // namespace fixture
