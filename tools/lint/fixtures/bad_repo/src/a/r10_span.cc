// R10 positives: raw spans that leak. `leakyEarlyReturn` opens a
// span and can return before ending it; `neverEnded` opens one and
// has no endSpan at all.
#include <cstdint>

namespace fixture {

struct Tracer
{
    std::uint64_t beginSpan(const char *name);
    void endSpan(std::uint64_t id);
};

int
leakyEarlyReturn(Tracer &tr, bool bail)
{
    const std::uint64_t span = tr.beginSpan("work");
    if (bail)
        return -1; // fires R10: span still open on this path
    tr.endSpan(span);
    return 0;
}

void
neverEnded(Tracer &tr)
{
    tr.beginSpan("lost"); // fires R10: no endSpan in this function
}

} // namespace fixture
