// a (layer 0) reaching up into b (layer 1): one R2 hit.
#include "b/top.hh"

int
reachUp()
{
    return fixture_b::topValue();
}
