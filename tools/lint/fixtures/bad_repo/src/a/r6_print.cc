// Console diagnostics in library code: three R6 hits. The snprintf
// is legal (formats into a buffer) and "std::cout" inside the string
// literal below must not fire — literals are blanked before scanning.
#include <cstdio>
#include <iostream>

void
chattyLibrary(double value)
{
    std::cout << "progress: " << value << "\n";
    std::cerr << "warning: value drifted\n";
    std::fprintf(stderr, "value=%f\n", value);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "std::cout says %f", value);
    (void)buf;
}
