// R9 positive (intra-file): two functions acquire the same pair of
// mutexes in opposite orders — a classic ABBA deadlock.
#include <mutex>

namespace fixture {

std::mutex lockP;
std::mutex lockQ;

void
forward()
{
    std::lock_guard<std::mutex> p(lockP);
    std::lock_guard<std::mutex> q(lockQ);
}

void
backward()
{
    std::lock_guard<std::mutex> q(lockQ);
    std::lock_guard<std::mutex> p(lockP);
}

} // namespace fixture
