// Header without any include guard: one R5 hit.

namespace fixture_a {

inline int
unguarded()
{
    return 0;
}

} // namespace fixture_a
