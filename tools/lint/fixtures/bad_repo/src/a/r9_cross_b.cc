// R9 positive (cross-TU), second half: see r9_cross_a.cc.
#include <mutex>

namespace fixture {

std::mutex lockN;

void backHelper();

void
crossHelper()
{
    std::lock_guard<std::mutex> n(lockN);
}

void
holdNThenBack()
{
    std::lock_guard<std::mutex> n(lockN);
    backHelper();
}

} // namespace fixture
