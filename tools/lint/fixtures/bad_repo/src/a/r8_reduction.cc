// R8 positive: by-reference-captured double accumulated with +=
// from a parallel task body — the sum depends on lane timing.
#include <cstddef>
#include <vector>

namespace fixture {

void parallelFor(std::size_t n, std::size_t grain, void (*fn)(std::size_t));

double
unstableSum(const std::vector<double> &v)
{
    double sum = 0.0;
    parallelFor(v.size(), 1, [&](std::size_t i) {
        sum += v[i]; // fires R8: float addition does not commute
    });
    return sum;
}

} // namespace fixture
