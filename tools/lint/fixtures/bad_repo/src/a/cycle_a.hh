// Half of an intra-module include cycle: one R2 hit (reported once).
#ifndef LINT_FIXTURE_A_CYCLE_A_HH
#define LINT_FIXTURE_A_CYCLE_A_HH

#include "a/cycle_b.hh"

#endif // LINT_FIXTURE_A_CYCLE_A_HH
