// b sits above a: this include flows downward and is legal.
#include "a/clean.hh"

namespace fixture_b {

int
callDown()
{
    return fixture_a::lookup({}, "k");
}

} // namespace fixture_b
