// R8 negative: per-slot writes in the parallel task, then a serial
// reduce in deterministic queue order after the join.
#include <cstddef>
#include <vector>

namespace fixture {

void parallelFor(std::size_t n, std::size_t grain, void (*fn)(std::size_t));

double
stableSum(const std::vector<double> &v)
{
    std::vector<double> partials(v.size(), 0.0);
    parallelFor(v.size(), 1, [&](std::size_t i) {
        partials[i] = v[i] * v[i]; // indexed write: R8 stays quiet
    });
    double sum = 0.0;
    for (std::size_t i = 0; i < partials.size(); ++i)
        sum += partials[i]; // serial reduce, fixed order
    return sum;
}

} // namespace fixture
