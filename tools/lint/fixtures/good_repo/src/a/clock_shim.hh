// The one allowlisted home for wall-clock reads (mirrors
// src/obs/clock.hh in the real tree).
#ifndef LINT_FIXTURE_A_CLOCK_SHIM_HH
#define LINT_FIXTURE_A_CLOCK_SHIM_HH

#include <chrono>
#include <cstdint>

namespace fixture_a {

inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

} // namespace fixture_a

#endif // LINT_FIXTURE_A_CLOCK_SHIM_HH
