#include "a/clean.hh"

#include <unordered_map>
#include <vector>

namespace fixture_a {

int
lookup(const std::map<std::string, int> &m, const std::string &k)
{
    const auto it = m.find(k);
    return it == m.end() ? 0 : it->second;
}

// Mentions of std::rand() or steady_clock::now() inside comments and
// string literals must never fire.
const char *kDoc = "never call std::rand() or srand() here";

int
sumValues(const std::unordered_map<int, int> &histogram)
{
    int sum = 0;
    // lint: ordered-ok integer addition commutes; the sum is
    // order-independent by construction
    for (const auto &kv : histogram)
        sum += kv.second;
    return sum;
}

std::vector<int>
orderedLoop(const std::vector<int> &v)
{
    std::vector<int> out;
    for (int x : v)
        out.push_back(x + 1);
    return out;
}

} // namespace fixture_a
