// The one allowlisted env reader (mirrors the DECEPTICON_* spec
// parsers in the real tree).
#include <cstdlib>

namespace fixture_a {

const char *
envSpec()
{
    const char *s = std::getenv("FIXTURE_SPEC");
    return s ? s : "";
}

} // namespace fixture_a
