// R10 negatives: a raw span ended before every return, and the RAII
// form, which never shows a bare beginSpan at the call site.
#include <cstdint>

namespace fixture {

struct Tracer
{
    std::uint64_t beginSpan(const char *name);
    void endSpan(std::uint64_t id);
};

struct ScopedSpan
{
    ScopedSpan(Tracer &tr, const char *name);
    ~ScopedSpan();
};

int
balanced(Tracer &tr, int x)
{
    const std::uint64_t span = tr.beginSpan("work");
    const int y = x * 2;
    tr.endSpan(span);
    return y; // span closed on this path: R10 stays quiet
}

int
raii(Tracer &tr, int x)
{
    ScopedSpan span(tr, "work"); // unwinding closes it: exempt
    if (x < 0)
        return -x;
    return x;
}

} // namespace fixture
