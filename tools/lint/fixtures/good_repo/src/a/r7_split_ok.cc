// R7 negative: the blessed pattern — the shared Rng is only ever
// asked for .split(i) inside the task, and each lane advances its
// own derived stream.
#include <cstdint>
#include <vector>

namespace fixture {

struct Rng
{
    explicit Rng(std::uint64_t seed);
    std::uint64_t nextU64();
    Rng split(std::uint64_t tag) const;
};

void parallelFor(std::size_t n, std::size_t grain, void (*fn)(std::size_t));

void
fillSplit(std::vector<std::uint64_t> &out)
{
    Rng root(7);
    parallelFor(out.size(), 1, [&](std::size_t i) {
        Rng lane = root.split(i); // per-task stream: R7 stays quiet
        out[i] = lane.nextU64();
    });
}

} // namespace fixture
