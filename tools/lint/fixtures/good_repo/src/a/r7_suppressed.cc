// R7 hit carrying a justified suppression: counted as suppressed,
// not as a violation, and the suppression is not stale.
#include <cstdint>
#include <vector>

namespace fixture {

struct Rng
{
    explicit Rng(std::uint64_t seed);
    std::uint64_t nextU64();
    Rng split(std::uint64_t tag) const;
};

void parallelFor(std::size_t n, std::size_t grain, void (*fn)(std::size_t));

void
fillGrainOne(std::vector<std::uint64_t> &out)
{
    Rng rng(11);
    parallelFor(out.size(), out.size(), [&](std::size_t i) {
        // lint: suppress(R7) single task at full grain, serial by construction
        out[i] = rng.nextU64();
    });
}

} // namespace fixture
