// Guarded header, downward-only world: nothing here may fire.
#ifndef LINT_FIXTURE_A_CLEAN_HH
#define LINT_FIXTURE_A_CLEAN_HH

#include <map>
#include <string>
#include <thread>

namespace fixture_a {

// std::thread::id is a type, not a spawn — R4 must stay silent.
using Tid = std::thread::id;

// TODO(#42): tagged todos are trackable and therefore fine.
int lookup(const std::map<std::string, int> &m, const std::string &k);

} // namespace fixture_a

#endif // LINT_FIXTURE_A_CLEAN_HH
