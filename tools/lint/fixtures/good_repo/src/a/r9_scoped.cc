// R9 negative: std::scoped_lock acquires both mutexes atomically
// (deadlock-free by construction), so opposite argument orders
// contribute no ordering edges.
#include <mutex>

namespace fixture {

std::mutex lockP;
std::mutex lockQ;

void
forwardAtomic()
{
    std::scoped_lock guard(lockP, lockQ);
}

void
backwardAtomic()
{
    std::scoped_lock guard(lockQ, lockP);
}

} // namespace fixture
