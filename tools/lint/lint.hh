/**
 * @file
 * decepticon-lint: in-repo static analysis enforcing the invariants
 * the reproduction rests on. The runtime determinism suite proves
 * bit-identity empirically; this tool makes the same invariants cheap
 * and exhaustive at rest, before a single test runs:
 *
 *   R1  banned nondeterminism — std::rand/srand, random_device,
 *       argless time(), and steady/system/high_resolution_clock::now
 *       outside the allowlisted clock shim and bench timing harness.
 *   R2  layering — the src/ #include graph must respect the declared
 *       subsystem partial order (tools/lint/layers.toml) and be
 *       acyclic at file granularity.
 *   R3  unordered-iteration hazard — range-for over
 *       std::unordered_{map,set,multimap,multiset} in files tagged
 *       deterministic, unless the line carries a justified
 *       `// lint: ordered-ok <why>`.
 *   R4  raw-thread ban — std::thread/std::jthread/std::async and
 *       `#pragma omp` anywhere except src/sched/ (all parallelism
 *       goes through the deterministic pool).
 *   R5  hygiene — headers without an include guard, getenv outside
 *       the config shims, TODO/FIXME without an issue tag, and stale
 *       (unused) suppression comments.
 *   R6  console-I/O ban — std::cout/cerr/clog and printf-family
 *       calls in library code ([r6.paths], minus [r6.allow_dirs]):
 *       diagnostics go through obs:: (metrics / trace / flight
 *       recorder) and renderers write to caller-provided streams, so
 *       library output stays capturable and deterministic.
 *
 * Deliberately not built on libclang: a deterministic token/line
 * scanner plus an include-graph builder covers every rule above, has
 * zero dependencies, and produces byte-identical reports across runs
 * and hosts.
 *
 * Suppression syntax (justification text is mandatory — a bare
 * suppression does not suppress):
 *
 *   code();            // lint: suppress(R4) tests the pool itself
 *   // lint: ordered-ok keys re-sorted downstream   (alias: R3)
 *   // lint-file: suppress(R1) this file IS the clock shim
 *
 * A line suppression on a comment-only line applies to the next line.
 */

#ifndef DECEPTICON_TOOLS_LINT_LINT_HH
#define DECEPTICON_TOOLS_LINT_LINT_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace decepticon::lint {

/** Parsed tools/lint/layers.toml (a deliberately tiny TOML subset:
 *  `[section]` headers, `key = value` pairs, and bare-value list
 *  entries; `#` starts a comment). */
struct Config
{
    /** [layers] module -> rank. An edge a -> b is legal iff
     *  rank(a) > rank(b) (or a == b). */
    std::map<std::string, int> layerOf;
    /** [r2.allow_edges] "from -> to" module pairs exempt from the
     *  rank check. */
    std::set<std::pair<std::string, std::string>> allowEdges;
    /** [r1.allow_files] repo-relative files where wall-clock /
     *  entropy calls are the point (clock shim, bench timing). */
    std::set<std::string> r1AllowFiles;
    /** [r3.paths] path prefixes tagged deterministic. */
    std::vector<std::string> r3Paths;
    /** [r4.allow_dirs] directory prefixes where raw threads are
     *  allowed (the scheduler implementation). */
    std::vector<std::string> r4AllowDirs;
    /** [r5.env_allow_files] the config shims allowed to getenv. */
    std::set<std::string> r5EnvAllowFiles;
    /** [r6.paths] path prefixes where console I/O is banned. */
    std::vector<std::string> r6Paths;
    /** [r6.allow_dirs] directory prefixes exempt from R6 (the obs
     *  exporters and report renderers that own process output). */
    std::vector<std::string> r6AllowDirs;
    /** [scan.roots] directories walked under --root. */
    std::vector<std::string> scanRoots;
};

/** Parse a config file. Returns false and sets *error on failure. */
bool loadConfig(const std::string &path, Config &out, std::string *error);

struct Violation
{
    std::string file; ///< repo-relative, '/' separators
    int line = 0;
    std::string rule; ///< "R1".."R6"
    std::string message;
    std::string justification; ///< non-empty only for suppressed hits
};

struct Report
{
    std::vector<Violation> violations; ///< unsuppressed — these fail CI
    std::vector<Violation> suppressed; ///< visible in review via baseline
    std::size_t filesScanned = 0;
    std::map<std::string, int> countsByRule; ///< unsuppressed, per rule
};

/** One suppression comment, matched to uses as rules fire. */
struct Suppression
{
    std::string rule;          ///< "R1".."R6"
    std::string justification; ///< text after the rule token, trimmed
    int line = 0;              ///< line the suppression targets
    bool used = false;
};

/** A loaded source file: raw lines plus a comment/string-blanked code
 *  view (same line structure), comment text per line, and parsed
 *  suppressions. */
struct SourceFile
{
    std::string path;                  ///< repo-relative
    std::vector<std::string> raw;      ///< verbatim lines
    std::vector<std::string> code;     ///< literals/comments blanked
    std::vector<std::string> comments; ///< comment text per line
    std::vector<Suppression> lineSuppressions;
    std::vector<Suppression> fileSuppressions;

    bool isHeader() const;
};

/** Load and pre-process one file. Returns false if unreadable. */
bool loadSource(const std::string &absPath, const std::string &relPath,
                SourceFile &out);

/** Run rules R1, R3, R4, R5, R6 on one file. */
void checkFile(SourceFile &f, const Config &cfg, Report &out);

/** Run R2 (layer ranks + file-level cycles) over all loaded files. */
void checkIncludeGraph(std::vector<SourceFile> &files, const Config &cfg,
                       Report &out);

/** After all rules ran: flag stale suppressions (R5). */
void checkUnusedSuppressions(const SourceFile &f, Report &out);

/** Walk cfg.scanRoots under root, run every rule, sort + count. */
Report runLint(const std::string &root, const Config &cfg);

/** Deterministic ordering + counts (runLint calls this). */
void finalize(Report &r);

/** `file:line: [rule] message` lines, one per violation. */
std::string renderText(const Report &r);

/** Machine-readable report; byte-identical across runs. */
std::string renderJson(const Report &r);

/** Record a rule hit against file f at 1-based line `line`: consumes
 *  a matching justified suppression or appends to out.violations. */
void emitViolation(SourceFile &f, int line, const std::string &rule,
                   const std::string &message, Report &out);

} // namespace decepticon::lint

#endif // DECEPTICON_TOOLS_LINT_LINT_HH
