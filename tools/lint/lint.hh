/**
 * @file
 * decepticon-lint: in-repo static analysis enforcing the invariants
 * the reproduction rests on. The runtime determinism suite proves
 * bit-identity empirically; this tool makes the same invariants cheap
 * and exhaustive at rest, before a single test runs:
 *
 *   R1  banned nondeterminism — std::rand/srand, random_device,
 *       argless time(), and steady/system/high_resolution_clock::now
 *       outside the allowlisted clock shim and bench timing harness.
 *   R2  layering — the src/ #include graph must respect the declared
 *       subsystem partial order (tools/lint/layers.toml) and be
 *       acyclic at file granularity.
 *   R3  unordered-iteration hazard — range-for over
 *       std::unordered_{map,set,multimap,multiset} in files tagged
 *       deterministic, unless the line carries a justified
 *       `// lint: ordered-ok <why>`.
 *   R4  raw-thread ban — std::thread/std::jthread/std::async and
 *       `#pragma omp` anywhere except src/sched/ (all parallelism
 *       goes through the deterministic pool).
 *   R5  hygiene — headers without an include guard, getenv outside
 *       the config shims, TODO/FIXME without an issue tag, stale
 *       (unused) suppression comments, and suppressions naming a
 *       rule id the tool does not know.
 *   R6  console-I/O ban — std::cout/cerr/clog and printf-family
 *       calls in library code ([r6.paths], minus [r6.allow_dirs]):
 *       diagnostics go through obs:: (metrics / trace / flight
 *       recorder) and renderers write to caller-provided streams, so
 *       library output stays capturable and deterministic.
 *
 * v2 adds a lightweight symbol indexer (function definitions, lambda
 * scopes with parsed capture lists, call sites), a cross-TU call
 * graph (name + arity matching layered on the include graph), and
 * four dataflow rules on top of it:
 *
 *   R7  shared-Rng-into-parallel-task — an Rng lvalue captured by
 *       reference (or a captured Rng pointer) into a
 *       parallelFor/parallelForRange task whose body uses it for
 *       anything but `.split(`: every lane would advance the same
 *       generator, making the stream interleaving-dependent.
 *   R8  order-dependent float reduction — `+=`/`-=` on a
 *       by-reference-captured float/double/Tensor accumulator inside
 *       a parallel task body: float addition does not commute
 *       bit-exactly, so the sum depends on lane timing.
 *   R9  lock-order DAG — per-function lock_guard/unique_lock/
 *       scoped_lock acquisition sequences, propagated one level
 *       through the cross-TU call graph; a cycle in the resulting
 *       lock-order graph is a potential deadlock. A multi-mutex
 *       std::scoped_lock acquires atomically and contributes no
 *       internal edges.
 *   R10 obs-span balance — a raw beginSpan whose function can return
 *       without a matching endSpan on that path (or never ends the
 *       span at all); RAII ScopedSpan is exempt by construction.
 *
 * Deliberately not built on libclang: a deterministic token/line
 * scanner plus the include-graph/symbol passes cover every rule
 * above, have zero dependencies, and produce byte-identical reports
 * across runs and hosts. A content-hash incremental cache keyed on
 * (file bytes, config bytes, tool version) keeps the full-repo sweep
 * warm time a small fraction of the cold run: per-file findings and
 * symbol summaries are cached, cross-TU passes (R2, R9, stale
 * suppressions) are recomputed from the summaries every run.
 *
 * Suppression syntax (justification text is mandatory — a bare
 * suppression does not suppress; rule ids R1–R10 are valid and any
 * other id is itself an R5 violation):
 *
 *   code();            // lint: suppress(R4) tests the pool itself
 *   // lint: ordered-ok keys re-sorted downstream   (alias: R3)
 *   // lint-file: suppress(R1) this file IS the clock shim
 *
 * A line suppression on a comment-only line applies to the next line.
 */

#ifndef DECEPTICON_TOOLS_LINT_LINT_HH
#define DECEPTICON_TOOLS_LINT_LINT_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace decepticon::lint {

/** Parsed tools/lint/layers.toml (a deliberately tiny TOML subset:
 *  `[section]` headers, `key = value` pairs, and bare-value list
 *  entries; `#` starts a comment). */
struct Config
{
    /** [layers] module -> rank. An edge a -> b is legal iff
     *  rank(a) > rank(b) (or a == b). */
    std::map<std::string, int> layerOf;
    /** [r2.allow_edges] "from -> to" module pairs exempt from the
     *  rank check. */
    std::set<std::pair<std::string, std::string>> allowEdges;
    /** [r1.allow_files] repo-relative files where wall-clock /
     *  entropy calls are the point (clock shim, bench timing). */
    std::set<std::string> r1AllowFiles;
    /** [r3.paths] path prefixes tagged deterministic. */
    std::vector<std::string> r3Paths;
    /** [r4.allow_dirs] directory prefixes where raw threads are
     *  allowed (the scheduler implementation). */
    std::vector<std::string> r4AllowDirs;
    /** [r5.env_allow_files] the config shims allowed to getenv. */
    std::set<std::string> r5EnvAllowFiles;
    /** [r6.paths] path prefixes where console I/O is banned. */
    std::vector<std::string> r6Paths;
    /** [r6.allow_dirs] directory prefixes exempt from R6 (the obs
     *  exporters and report renderers that own process output). */
    std::vector<std::string> r6AllowDirs;
    /** [dataflow.paths] path prefixes where the parallel-task
     *  dataflow rules (R7, R8) run — the deterministic tree. */
    std::vector<std::string> dataflowPaths;
    /** [r9.paths] path prefixes contributing lock acquisitions and
     *  call-graph edges to the lock-order DAG. */
    std::vector<std::string> r9Paths;
    /** [r10.paths] path prefixes where span balance is enforced. */
    std::vector<std::string> r10Paths;
    /** [r10.allow_dirs] prefixes exempt from R10 (the obs layer that
     *  implements the tracer owns raw begin/end internally). */
    std::vector<std::string> r10AllowDirs;
    /** [scan.roots] directories walked under --root. */
    std::vector<std::string> scanRoots;
    /** FNV-1a of the raw config bytes — part of the cache key, so a
     *  config edit invalidates every cached summary. */
    std::uint64_t sourceHash = 0;
};

/** Parse a config file. Returns false and sets *error on failure. */
bool loadConfig(const std::string &path, Config &out, std::string *error);

struct Violation
{
    std::string file; ///< repo-relative, '/' separators
    int line = 0;
    std::string rule; ///< "R1".."R10"
    std::string message;
    std::string justification; ///< non-empty only for suppressed hits
};

struct Report
{
    std::vector<Violation> violations; ///< unsuppressed — these fail CI
    std::vector<Violation> suppressed; ///< visible in review via baseline
    std::size_t filesScanned = 0;
    std::size_t cacheHits = 0; ///< files served from the incremental cache
    std::int64_t durationMicros = 0; ///< wall time of the lint run
    std::map<std::string, int> countsByRule; ///< unsuppressed, per rule
};

/** One suppression comment, matched to uses as rules fire. */
struct Suppression
{
    std::string rule;          ///< "R1".."R10"
    std::string justification; ///< text after the rule token, trimmed
    int line = 0;              ///< line the suppression targets
    bool used = false;         ///< consumed by a per-file rule (cached)
    bool usedCross = false;    ///< consumed by a cross-TU rule (per run)
};

/** A loaded source file: raw lines plus a comment/string-blanked code
 *  view (same line structure), comment text per line, and parsed
 *  suppressions. */
struct SourceFile
{
    std::string path;                  ///< repo-relative
    std::vector<std::string> raw;      ///< verbatim lines
    std::vector<std::string> code;     ///< literals/comments blanked
    std::vector<std::string> comments; ///< comment text per line
    std::vector<Suppression> lineSuppressions;
    std::vector<Suppression> fileSuppressions;
    /** Suppressions naming an unknown rule id: (line, bad id). */
    std::vector<std::pair<int, std::string>> badSuppressions;

    bool isHeader() const;
};

/** Load and pre-process one file. Returns false if unreadable. */
bool loadSource(const std::string &absPath, const std::string &relPath,
                SourceFile &out);

/** Pre-process from in-memory bytes (the cache layer hashes the
 *  bytes first, so the file is read exactly once per run). */
void loadSourceFromString(const std::string &text,
                          const std::string &relPath, SourceFile &out);

// --- token / symbol layer -----------------------------------------

struct Token
{
    std::string text;
    int line = 0; ///< 1-based
    bool ident = false;
};

/** Tokenize the blanked code view into identifiers and punctuation.
 *  `::` is one token; every other punctuation char is its own. */
std::vector<Token> tokenize(const SourceFile &f);

/** A lambda expression: capture semantics plus body token range. */
struct LambdaInfo
{
    std::size_t introTok = 0;              ///< index of '['
    std::size_t bodyBegin = 0, bodyEnd = 0; ///< '{' .. matching '}'
    int line = 0;
    bool defaultRef = false;  ///< [&]
    bool defaultCopy = false; ///< [=]
    std::set<std::string> refCaptures;  ///< [&x]
    std::set<std::string> copyCaptures; ///< [x]
    /** Init-captures aliasing an outer name: alias -> outer name
     *  (e.g. `[&r = rng]` or `[p = &rng]` record r/p -> rng, both
     *  with reference semantics). */
    std::map<std::string, std::string> refAliases;
    bool parallelTask = false; ///< argument to parallelFor(Range)
};

/** An intra-function lock-order edge: `from` held while acquiring
 *  `to` (names are unqualified here; the call-graph pass qualifies
 *  them with the file path). */
struct LockEdge
{
    std::string from, to;
    int line = 0;
};

/** A call made while holding at least one lock. */
struct HeldCall
{
    std::string callee;
    int arity = 0;
    int line = 0;
    std::vector<std::string> held; ///< lock names held at the call
};

/** Cacheable per-function summary feeding the cross-TU lock pass. */
struct FunctionInfo
{
    std::string name; ///< unqualified (last identifier)
    int arity = 0;
    int line = 0;
    std::vector<std::string> acquired; ///< locks acquired in body, dedup
    std::vector<LockEdge> edges;       ///< intra-function order edges
    std::vector<HeldCall> heldCalls;
};

/** Full per-TU index (not cached — rebuilt when a file misses the
 *  cache; the cacheable subset is distilled into FileSummary). */
struct TuIndex
{
    std::vector<Token> toks;
    /** Function definitions with body token ranges, for the
     *  dataflow rules that need to walk bodies. */
    struct FnDef
    {
        std::string name;
        int arity = 0;
        int line = 0;
        std::size_t bodyBegin = 0, bodyEnd = 0; ///< '{' .. '}'
    };
    std::vector<FnDef> functions;
    std::vector<LambdaInfo> lambdas;
    std::set<std::string> rngNames;    ///< Rng lvalues declared in TU
    std::set<std::string> rngPointers; ///< Rng* declared in TU
    std::set<std::string> floatAccums; ///< float/double/Tensor lvalues
    std::vector<FunctionInfo> lockInfo; ///< per-function R9 summaries
};

/** Build the symbol index for one file (symbols.cc). */
TuIndex buildTuIndex(const SourceFile &f);

/** Collect `Rng` / float/double/Tensor lvalue declarations in a
 *  token range. The dataflow rules call this on lambda bodies to
 *  subtract task-local declarations (a per-task `Rng local` or
 *  `double partial` is exactly the blessed pattern). */
void collectTypedDecls(const std::vector<Token> &toks, std::size_t begin,
                       std::size_t end, std::set<std::string> &rngNames,
                       std::set<std::string> &rngPtrs,
                       std::set<std::string> &accums);

/** One quoted #include. */
struct Include
{
    std::string target; ///< path as written, e.g. "util/rng.hh"
    int line = 0;
};

/** Quoted includes from the code view. */
std::vector<Include> quotedIncludes(const SourceFile &f);

// --- per-file summary (the unit of incremental caching) -----------

/** Everything later passes need from a file: per-file findings plus
 *  the inputs to the cross-TU passes. Serialized to the cache keyed
 *  by content hash; cross-TU passes run fresh every time, so a
 *  cache hit can never hide a cross-file regression. */
struct FileSummary
{
    std::string path;
    std::uint64_t contentHash = 0;
    bool fromCache = false;
    std::vector<Suppression> lineSuppressions;
    std::vector<Suppression> fileSuppressions;
    std::vector<Violation> violations; ///< per-file rules, unsuppressed
    std::vector<Violation> suppressed; ///< per-file rules, suppressed
    std::vector<Include> includes;
    std::vector<FunctionInfo> functions; ///< R9 inputs
};

/** Record a per-file rule hit: consumes a matching justified
 *  suppression or appends to s.violations. */
void emitLocal(FileSummary &s, int line, const std::string &rule,
               const std::string &message);

/** Record a cross-TU rule hit against a (possibly cached) summary:
 *  consumes a suppression (marking usedCross) or appends to
 *  out.violations. */
void emitCross(FileSummary &s, int line, const std::string &rule,
               const std::string &message, Report &out);

/** Run every per-file rule (R1, R3–R8, R10) and distill the
 *  cacheable summary. */
FileSummary analyzeFile(const SourceFile &f, const Config &cfg);

/** Token-level rules R1, R3, R4, R5, R6 (rules.cc). */
void checkFileRules(const SourceFile &f, const std::vector<Token> &toks,
                    const Config &cfg, FileSummary &s);

/** Dataflow rules R7, R8, R10 over the symbol index (dataflow.cc). */
void checkDataflow(const SourceFile &f, const TuIndex &ix,
                   const Config &cfg, FileSummary &s);

/** R2 (layer ranks + file-level cycles) over all summaries. */
void checkIncludeGraph(std::vector<FileSummary> &sums, const Config &cfg,
                       Report &out);

/** R9: build the lock-order graph (intra-function edges plus one
 *  level of call-graph propagation) and report cycles
 *  (callgraph.cc). */
void checkLockGraph(std::vector<FileSummary> &sums, const Config &cfg,
                    Report &out);

/** After all rules ran: flag stale suppressions (R5). */
void checkUnusedSuppressions(const FileSummary &s, Report &out);

// --- incremental cache (cache.cc) ---------------------------------

/** Load cached summaries. Returns false (empty map) on any format or
 *  version mismatch — the cache is advisory, never authoritative. */
bool loadCache(const std::string &path, std::uint64_t configHash,
               std::map<std::string, FileSummary> &byPath);

/** Persist summaries after a run (best effort; failure is silent —
 *  the next run is just cold). */
void saveCache(const std::string &path, std::uint64_t configHash,
               const std::vector<FileSummary> &sums);

/** FNV-1a 64 over raw bytes — the cache key primitive. */
std::uint64_t fnv1a64(const std::string &bytes);

// --- orchestration / rendering ------------------------------------

/** Walk cfg.scanRoots under root, run every rule, sort + count.
 *  With a non-empty cachePath, per-file work is served from /
 *  persisted to the incremental cache. */
Report runLint(const std::string &root, const Config &cfg,
               const std::string &cachePath = std::string());

/** Deterministic ordering + counts (runLint calls this). */
void finalize(Report &r);

/** `file:line: [rule] message` lines, one per violation. */
std::string renderText(const Report &r);

/** Machine-readable report; byte-identical across runs when
 *  withGauges is false (the canonical findings document). With
 *  gauges, a `gauges` object adds lint.files_scanned,
 *  lint.cache_hits and lint.duration_micros (run telemetry — not
 *  part of the byte-identity contract). */
std::string renderJson(const Report &r, bool withGauges = false);

/** SARIF 2.1.0 export (static-analysis interchange): rule metadata,
 *  unsuppressed results at level error, suppressed results carried
 *  with their inSource justification. Byte-identical across runs. */
std::string renderSarif(const Report &r);

} // namespace decepticon::lint

#endif // DECEPTICON_TOOLS_LINT_LINT_HH
