/**
 * @file
 * Defender's-eye view: evaluating the Sec. 8 countermeasure. The
 * serving stack randomizes kernel/library selection per inference and
 * the weights sit in DRAM where only part of the rows are hammerable.
 * The example runs the same identification + extraction attack against
 * an undefended and a defended deployment and compares what the
 * attacker gets — the measurement a defender needs to size the
 * runtime overhead against the privacy gained.
 *
 * Run: ./build/examples/defended_victim
 */

#include <iostream>

#include "core/decepticon.hh"
#include "extraction/cloner.hh"
#include "gpusim/trace_generator.hh"
#include "transformer/trainer.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    std::cout << "=== Decepticon vs a defended deployment ===\n\n";

    // Candidate pool: six same-architecture releases of one model
    // family from the same software stack — the hardest (and most
    // security-relevant) identification setting. With architecture-
    // diverse pools the defense cannot help much anyway: layer count
    // and hidden size leak through timing no matter which kernels run.
    zoo::ModelZoo pool;
    for (int i = 0; i < 6; ++i) {
        zoo::ModelIdentity m;
        m.family = "BERT";
        m.sizeClass = "base";
        m.arch.numLayers = 12;
        m.arch.hidden = 768;
        m.arch.numHeads = 12;
        m.arch.seqLen = 128;
        m.signature.kernelDialect = i; // library-version differences
        m.vocabProfile.cased = i % 2 == 1;
        m.vocabProfile.language = i < 4 ? zoo::Language::English
                                        : zoo::Language::French;
        m.name = "community/bert-base-release-" + std::to_string(i);
        m.pretrainedName = m.name;
        m.isPretrained = true;
        m.weightSeed = 1000 + static_cast<std::uint64_t>(i);
        pool.add(m);
    }
    const zoo::ModelIdentity *parent = pool.byName(
        "community/bert-base-release-3");

    transformer::TransformerConfig cfg;
    cfg.vocab = 24;
    cfg.maxSeqLen = 12;
    cfg.hidden = 16;
    cfg.numLayers = 4;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = 4;
    transformer::TransformerClassifier pretrained(cfg, parent->weightSeed);
    transformer::MarkovTask pretask(cfg.vocab, 4, cfg.maxSeqLen, 7700,
                                    4.0);
    transformer::TrainOptions popts;
    popts.epochs = 4;
    popts.lr = 2e-3f;
    transformer::Trainer::train(pretrained, pretask.sample(160, 1),
                                popts);

    transformer::TransformerClassifier victim(pretrained);
    victim.resetHead(2, 5);
    transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen, 7701, 4.0);
    transformer::TrainOptions fopts;
    fopts.epochs = 3;
    fopts.lr = 2e-4f;
    fopts.headLrMultiplier = 30.0f;
    transformer::Trainer::fineTune(victim, task.sample(160, 2), fopts);

    // ------------------------------------------------------------------
    // Identification accuracy, undefended vs defended serving stack.
    // The attacker profiles the candidates the same way the victim
    // serves (he cannot turn the defense off on the victim's box).
    // ------------------------------------------------------------------
    auto identify_rate = [&](double defense_strength) {
        core::DecepticonOptions opts;
        opts.datasetOptions.imagesPerModel = 4;
        opts.datasetOptions.resolution = 32;
        opts.cnnOptions.epochs = 25;
        opts.seed = 3;

        // Build the training pool with the defense applied.
        fingerprint::FingerprintDataset ds;
        ds.resolution = 32;
        ds.classNames = pool.lineageNames();
        util::Rng rng(99);
        for (const auto &m : pool.models()) {
            int label = -1;
            for (std::size_t c = 0; c < ds.classNames.size(); ++c) {
                if (ds.classNames[c] == m.pretrainedName)
                    label = static_cast<int>(c);
            }
            if (label < 0)
                continue;
            const gpusim::TraceGenerator gen(m.signature);
            for (int k = 0; k < 4; ++k) {
                fingerprint::FingerprintSample s;
                s.label = label;
                s.modelName = m.name;
                s.image = fingerprint::fingerprintImage(
                    gen.generateDefended(m.arch, rng.nextU64(),
                                         defense_strength),
                    32);
                ds.samples.push_back(std::move(s));
            }
        }
        auto [train, test] = ds.split(0.8, 5);
        fingerprint::FingerprintCnn cnn(32, ds.numClasses(), 11);
        fingerprint::CnnTrainOptions topts;
        topts.epochs = 25;
        cnn.train(train, topts);

        // Identify the victim from fresh defended traces.
        std::size_t correct = 0, total = 0;
        const gpusim::TraceGenerator gen(parent->signature);
        for (int run = 0; run < 12; ++run) {
            const auto trace = gen.generateDefended(
                parent->arch, 5000 + run, defense_strength);
            const auto img = fingerprint::fingerprintImage(trace, 32);
            const int pred = cnn.predict(img);
            correct += ds.classNames[static_cast<std::size_t>(pred)] ==
                               parent->name
                           ? 1
                           : 0;
            ++total;
        }
        return static_cast<double>(correct) /
               static_cast<double>(total);
    };

    util::Table t({"deployment", "victim identified (rate)"});
    const double plain_rate = identify_rate(0.0);
    const double defended_rate = identify_rate(1.0);
    t.row().cell("undefended").cell(plain_rate, 3);
    t.row().cell("kernel randomization (full)").cell(defended_rate, 3);
    util::printBanner(std::cout, "Level 1 under the countermeasure");
    t.printAscii(std::cout);

    // ------------------------------------------------------------------
    // Level 2 under DRAM limits: only 60% of weight rows hammerable.
    // ------------------------------------------------------------------
    extraction::ClonerOptions copts;
    copts.policy.baseDist = 0.02;
    copts.policy.significance = 0.0001;
    copts.policy.maxBitsPerWeight = 8;
    copts.agreementTarget = 0.995;
    extraction::DramGeometry geom;
    geom.hammerableRowFraction = 0.6;
    copts.dramGeometry = geom;
    copts.dramSeed = 13;

    auto result = extraction::ModelCloner::extract(
        victim, pretrained, task.sample(80, 3).examples, copts);
    const auto dev = task.sample(100, 4);
    const auto victim_eval = transformer::Trainer::evaluate(victim, dev);
    const auto clone_eval =
        transformer::Trainer::evaluate(*result.clone, dev);

    util::printBanner(std::cout,
                      "Level 2 with 60% hammerable DRAM rows");
    std::cout << "victim accuracy " << victim_eval.accuracy
              << " | clone accuracy " << clone_eval.accuracy
              << "\nweights unreachable: "
              << result.extractionStats.unreadableWeights
              << "; hammer rounds: " << result.probeStats.hammerRounds
              << "\n";

    std::cout << "\nsummary: randomization cuts identification from "
              << plain_rate << " to " << defended_rate
              << "; DRAM limits slow but do not stop extraction.\n";
    return plain_rate > defended_rate ? 0 : 1;
}
