/**
 * @file
 * Quickstart: the complete two-level Decepticon attack in one sitting.
 *
 * The scenario: a service deploys a black-box text classifier that was
 * fine-tuned (transfer-learned) from one of several publicly available
 * pre-trained models. The attacker
 *
 *   1. captures the victim's GPU kernel execution trace (the
 *      architectural-hint side channel),
 *   2. identifies which pre-trained model the victim descends from by
 *      classifying the trace's fingerprint image with a CNN, using
 *      query outputs to break ties,
 *   3. selectively extracts the victim's weights via the rowhammer
 *      bit-probe channel, using the pre-trained weights as a baseline
 *      (Algorithm 1), and
 *   4. uses the resulting clone to craft adversarial inputs that fool
 *      the victim.
 *
 * Build & run:  cmake -B build -G Ninja && cmake --build build &&
 *               ./build/examples/quickstart
 */

#include <iostream>

#include "attack/adversarial.hh"
#include "core/decepticon.hh"
#include "core/run_report.hh"
#include "extraction/cloner.hh"
#include "fingerprint/dataset.hh"
#include "gpusim/trace_generator.hh"
#include "nn/param.hh"
#include "obs/obs.hh"
#include "trace/image.hh"
#include "transformer/trainer.hh"

using namespace decepticon;

int
main()
{
    // Telemetry: set DECEPTICON_OBS=trace:/tmp/run.json,metrics:...
    // to capture spans and counters of the whole attack.
    obs::initFromEnv();
    core::AttackRunReport run;
    std::uint64_t phase_start = obs::clock().nowMicros();
    const auto end_phase = [&](const char *name) {
        const std::uint64_t now = obs::clock().nowMicros();
        run.recordPhase(name, now - phase_start);
        phase_start = now;
    };

    std::cout << "=== Decepticon quickstart ===\n\n";

    // ------------------------------------------------------------------
    // World setup. The candidate pool: pre-trained releases the
    // attacker can download, one of which (unknown to him) is the
    // victim's parent.
    // ------------------------------------------------------------------
    zoo::ModelZoo pool = zoo::ModelZoo::buildDefault(/*seed=*/42,
                                                     /*pretrained=*/6,
                                                     /*finetuned=*/12);
    const zoo::ModelIdentity *parent = pool.pretrained()[2];
    std::cout << "candidate pool: " << pool.pretrained().size()
              << " pre-trained lineages, "
              << pool.finetuned().size() << " fine-tuned descendants\n";
    std::cout << "victim's (secret) parent: " << parent->name << "\n\n";

    // The parent's weights: a genuinely trained small transformer.
    transformer::TransformerConfig cfg;
    cfg.vocab = 24;
    cfg.maxSeqLen = 12;
    cfg.hidden = 16;
    cfg.numLayers = 4;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = 4;
    transformer::TransformerClassifier pretrained(cfg,
                                                  parent->weightSeed);
    transformer::MarkovTask pretask(cfg.vocab, 4, cfg.maxSeqLen, 900,
                                    4.0);
    transformer::TrainOptions popts;
    popts.epochs = 4;
    popts.lr = 2e-3f;
    transformer::Trainer::train(pretrained, pretask.sample(160, 1),
                                popts);

    // The victim: fine-tuned from the parent on a private 2-class task.
    transformer::TransformerClassifier victim(pretrained);
    victim.resetHead(2, 5);
    transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen, 901, 4.0);
    const transformer::Dataset dev = task.sample(100, 3);
    transformer::TrainOptions fopts;
    fopts.epochs = 3;
    fopts.lr = 2e-4f;
    fopts.headLrMultiplier = 30.0f;
    transformer::Trainer::fineTune(victim, task.sample(160, 2), fopts);
    const auto victim_eval = transformer::Trainer::evaluate(victim, dev);
    std::cout << "victim deployed; dev accuracy "
              << victim_eval.accuracy << "\n\n";
    end_phase("world_setup");

    // ------------------------------------------------------------------
    // Level 1: identify the pre-trained model.
    // ------------------------------------------------------------------
    std::cout << "[level 1] training the pre-trained model extractor "
                 "over the candidate pool...\n";
    core::DecepticonOptions opts;
    opts.datasetOptions.imagesPerModel = 4;
    opts.datasetOptions.resolution = 32;
    opts.cnnOptions.epochs = 30;
    opts.seed = 7;
    core::Decepticon pipeline(opts);
    const double extractor_acc = pipeline.trainExtractor(pool);
    std::cout << "    extractor held-out accuracy: " << extractor_acc
              << "\n";
    end_phase("train_extractor");

    std::cout << "[level 1] capturing the victim's kernel trace...\n";
    const gpusim::KernelTrace victim_trace =
        gpusim::TraceGenerator(parent->signature)
            .generate(parent->arch, /*run_seed=*/0x1dbeef);
    std::cout << "    victim fingerprint (x = time, y = kernel "
                 "duration):\n"
              << trace::renderAscii(
                     fingerprint::fingerprintImage(victim_trace, 32),
                     48);
    const auto ident = pipeline.identify(
        victim_trace, core::makeVictimQueryHook(parent->vocabProfile));
    std::cout << "    identified pre-trained model: "
              << ident.pretrainedName
              << (ident.usedQueryProbes ? " (query probes used)" : "")
              << "\n    correct: "
              << (ident.pretrainedName == parent->name ? "YES" : "no")
              << "\n\n";
    end_phase("identify");
    run.recordIdentification(ident);

    // ------------------------------------------------------------------
    // Level 2: selective weight extraction -> clone.
    // ------------------------------------------------------------------
    std::cout << "[level 2] extracting weights via the bit-probe "
                 "channel...\n";
    extraction::ClonerOptions copts;
    copts.policy.baseDist = 0.02;
    copts.policy.significance = 0.0001;
    copts.policy.maxBitsPerWeight = 8;
    copts.agreementTarget = 0.99;
    auto clone_result = extraction::ModelCloner::extract(
        victim, pretrained, task.sample(80, 4).examples, copts);

    const auto clone_eval =
        transformer::Trainer::evaluate(*clone_result.clone, dev);
    std::vector<int> victim_preds;
    for (const auto &ex : dev.examples)
        victim_preds.push_back(victim.predict(ex.tokens));
    const double matched = transformer::Trainer::agreement(
        clone_eval.predictions, victim_preds);
    const std::size_t full_bits =
        32 * nn::totalParamCount(victim.params());
    std::cout << "    clone accuracy " << clone_eval.accuracy
              << " (victim " << victim_eval.accuracy << ")\n"
              << "    matched predictions: " << matched << "\n"
              << "    bits hammered: " << clone_result.probeStats.bitsRead
              << " / " << full_bits << " ("
              << 100.0 *
                     static_cast<double>(clone_result.probeStats.bitsRead) /
                     static_cast<double>(full_bits)
              << "% of a naive full-weight attack)\n"
              << "    victim prediction-API queries used: "
              << clone_result.victimQueries << "\n\n";
    end_phase("extract");
    run.recordExtraction(clone_result.probeStats,
                         clone_result.extractionStats,
                         clone_result.layersExtracted,
                         clone_result.victimQueries);

    // ------------------------------------------------------------------
    // White-box attack with the clone.
    // ------------------------------------------------------------------
    std::cout << "[attack] crafting adversarial inputs on the clone...\n";
    attack::AdversarialOptions aopts;
    aopts.maxFlips = 6;
    const auto transfer = attack::evaluateTransfer(
        victim, *clone_result.clone, task.sample(60, 5).examples, aopts);
    std::cout << "    adversarial success rate on the victim: "
              << transfer.successRate() << " (" << transfer.fooled
              << "/" << transfer.eligible << " seeds)\n\n";
    end_phase("adversarial");

    const bool ok = ident.pretrainedName == parent->name &&
                    matched > 0.9 && transfer.successRate() > 0.4;

    // The same run, as the machine-readable report (one paragraph).
    run.victimAccuracy = victim_eval.accuracy;
    run.cloneAccuracy = clone_eval.accuracy;
    run.cloneVictimAgreement = matched;
    run.adversarialSuccess = transfer.successRate();
    run.complete = ok;
    if (obs::metricsEnabled())
        run.toMetrics(obs::metrics());
    std::cout << "[report] " << run.summaryParagraph() << "\n\n";

    std::cout << (ok ? "Quickstart attack succeeded."
                     : "Quickstart attack underperformed — see output.")
              << "\n";
    obs::flush();
    return ok ? 0 : 1;
}
