/**
 * @file
 * Model-zoo fingerprint survey — the characterization workload behind
 * the paper's Sec. 4.2: build the full 70-pre-trained / 170-fine-tuned
 * population, census each source's kernel behaviour, verify that
 * fingerprints are inherited within lineages, and train the CNN
 * extractor over a slice of the zoo to measure identification
 * accuracy.
 *
 * Run: ./build/examples/zoo_fingerprint_survey
 */

#include <iostream>
#include <map>

#include "core/decepticon.hh"
#include "fingerprint/boundary.hh"
#include "fingerprint/metrics.hh"
#include "gpusim/trace_generator.hh"
#include "util/table.hh"
#include "zoo/vocab.hh"
#include "zoo/zoo.hh"

using namespace decepticon;

int
main()
{
    std::cout << "=== Decepticon model-zoo fingerprint survey ===\n";

    // Full paper-scale population.
    const zoo::ModelZoo zoo = zoo::ModelZoo::buildDefault(2024);
    std::cout << "population: " << zoo.pretrained().size()
              << " pre-trained + " << zoo.finetuned().size()
              << " fine-tuned models\n";

    // ------------------------------------------------------------------
    // Census: kernel behaviour per framework (Fig. 9 flavour).
    // ------------------------------------------------------------------
    std::map<std::string, std::pair<std::size_t, std::size_t>> census;
    std::map<std::string, std::size_t> counts;
    for (const auto *m : zoo.pretrained()) {
        const gpusim::TraceGenerator gen(m->signature);
        const auto trace = gen.generate(m->arch, 1);
        const std::string key = gpusim::toString(m->signature.framework);
        census[key].first += trace.records.size();
        census[key].second += trace.uniqueKernelCount();
        ++counts[key];
    }
    util::Table census_t({"framework", "avg kernel execs",
                          "avg unique kernels", "models"});
    for (const auto &[fw, sums] : census) {
        census_t.row()
            .cell(fw)
            .cell(sums.first / counts[fw])
            .cell(sums.second / counts[fw])
            .cell(counts[fw]);
    }
    util::printBanner(std::cout, "Kernel census by framework");
    census_t.printAscii(std::cout);

    // ------------------------------------------------------------------
    // Layer-boundary detection across the whole zoo (Fig. 10 at scale).
    // ------------------------------------------------------------------
    std::size_t boundary_correct = 0, boundary_total = 0;
    for (const auto *m : zoo.pretrained()) {
        const auto trace = gpusim::TraceGenerator(m->signature)
                               .generate(m->arch, 2);
        const auto res = fingerprint::detectLayerBoundaries(trace);
        boundary_correct +=
            res.repetitions == m->arch.numLayers ? 1 : 0;
        ++boundary_total;
    }
    std::cout << "\nlayer-count detection over all pre-trained models: "
              << boundary_correct << "/" << boundary_total << "\n";

    // ------------------------------------------------------------------
    // CNN extractor over a 16-lineage slice (fingerprint recognition).
    // ------------------------------------------------------------------
    core::DecepticonOptions opts;
    opts.datasetOptions.imagesPerModel = 4;
    opts.datasetOptions.resolution = 32;
    opts.datasetOptions.lineageLimit = 16;
    opts.cnnOptions.epochs = 30;
    opts.seed = 11;
    core::Decepticon pipeline(opts);
    const double extractor_acc = pipeline.trainExtractor(zoo);
    std::cout << "CNN extractor held-out accuracy over 16 lineages: "
              << extractor_acc << "\n";

    // Identify every fine-tuned descendant of those lineages from a
    // fresh trace.
    std::size_t id_correct = 0, id_total = 0;
    for (const auto *ft : zoo.finetuned()) {
        bool in_slice = false;
        for (const auto &name : pipeline.classNames())
            in_slice |= name == ft->pretrainedName;
        if (!in_slice)
            continue;
        const auto trace = gpusim::TraceGenerator(ft->signature)
                               .generate(ft->arch, 7000 + id_total);
        const auto res = pipeline.identify(
            trace, core::makeVictimQueryHook(ft->vocabProfile));
        id_correct += res.pretrainedName == ft->pretrainedName ? 1 : 0;
        ++id_total;
    }
    std::cout << "fine-tuned victim identification: " << id_correct
              << "/" << id_total << " ("
              << (id_total
                      ? 100.0 * static_cast<double>(id_correct) /
                            static_cast<double>(id_total)
                      : 0.0)
              << "%)\n";

    // ------------------------------------------------------------------
    // Query-probe compilation: minimal probe set that tells apart the
    // distinguishable vocabulary variants in the zoo (paper Sec. 5.3).
    // ------------------------------------------------------------------
    std::vector<zoo::VocabularyProfile> profiles;
    for (const auto *m : zoo.pretrained())
        profiles.push_back(m->vocabProfile);
    const auto probes = zoo::buildDiscriminativeProbeSet(profiles);
    std::cout << "\ndiscriminative probe set over "
              << profiles.size() << " candidate profiles: "
              << probes.size() << " probes (universe: "
              << zoo::standardProbeSet().size() << ")\n";
    for (const auto &p : probes)
        std::cout << "    \"" << p.text << "\"\n";

    const bool ok =
        boundary_correct > boundary_total * 9 / 10 &&
        extractor_acc > 0.6 &&
        id_correct * 10 > id_total * 6;
    return ok ? 0 : 1;
}
