/**
 * @file
 * Head-pruning audit (the Sec. 8 discussion scenario): the victim
 * deployed a fine-tuned model with several attention heads pruned. The
 * attacker (a) detects *how many* heads were pruned from the timing of
 * short attention kernels, (b) predicts *which* heads are gone by
 * ranking head confidence on the pre-trained model (confidences
 * correlate across fine-tuning, Fig. 20), and (c) verifies the
 * dimensional bookkeeping needed to align the pruned victim's weight
 * matrices with the unpruned baseline.
 *
 * Run: ./build/examples/head_pruning_audit
 */

#include <algorithm>
#include <iostream>

#include "attack/head_pruning.hh"
#include "gpusim/trace_generator.hh"
#include "transformer/confidence.hh"
#include "transformer/trainer.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    std::cout << "=== Decepticon head-pruning audit ===\n";

    // ------------------------------------------------------------------
    // (a) How many heads were pruned? Timing tells.
    // ------------------------------------------------------------------
    gpusim::SoftwareSignature sig;
    sig.kernelDialect = 99;
    const gpusim::TraceGenerator gen(sig);
    gpusim::ArchParams dense;
    dense.numLayers = 12;
    dense.hidden = 768;
    dense.numHeads = 12;
    dense.seqLen = 128;

    const auto reference = gen.generate(dense, 1);
    util::Table count_t({"actual pruned", "estimated from trace"});
    bool counts_ok = true;
    for (std::size_t pruned : {0u, 1u, 3u, 6u}) {
        gpusim::ArchParams arch = dense;
        arch.prunedHeads = pruned;
        const auto victim_trace = gen.generate(arch, 10 + pruned);
        const std::size_t est = attack::estimatePrunedHeadCount(
            victim_trace, reference, dense.numHeads);
        counts_ok &= est == pruned;
        count_t.row().cell(pruned).cell(est);
    }
    util::printBanner(std::cout, "(a) pruned-head count from timing");
    count_t.printAscii(std::cout);

    // ------------------------------------------------------------------
    // (b) Which heads? Confidence ranking on the pre-trained model.
    // ------------------------------------------------------------------
    transformer::TransformerConfig cfg;
    cfg.vocab = 24;
    cfg.maxSeqLen = 12;
    cfg.hidden = 16;
    cfg.numLayers = 4;
    cfg.numHeads = 4;
    cfg.ffnDim = 32;
    cfg.numClasses = 4;

    transformer::TransformerClassifier pretrained(cfg, 31);
    transformer::MarkovTask pretask(cfg.vocab, 4, cfg.maxSeqLen, 310,
                                    4.0);
    transformer::TrainOptions popts;
    popts.epochs = 4;
    popts.lr = 2e-3f;
    transformer::Trainer::train(pretrained, pretask.sample(160, 1),
                                popts);

    transformer::TransformerClassifier victim(pretrained);
    victim.resetHead(2, 9);
    transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen, 311, 4.0);
    transformer::TrainOptions fopts;
    fopts.epochs = 3;
    fopts.lr = 2e-4f;
    fopts.headLrMultiplier = 30.0f;
    transformer::Trainer::fineTune(victim, task.sample(140, 2), fopts);

    const auto samples = pretask.sample(24, 3).examples;
    constexpr std::size_t kPruneCount = 4;

    // The deployer prunes the victim's lowest-confidence heads.
    const auto victim_pruned =
        attack::predictPrunedHeads(victim, samples, kPruneCount);
    for (const auto &[l, h] : victim_pruned) {
        auto active = victim.encoder(l).activeHeads();
        active[h] = false;
        victim.encoder(l).setActiveHeads(active);
    }

    // The attacker predicts the pruned set from the pre-trained model.
    const auto guess =
        attack::predictPrunedHeads(pretrained, samples, kPruneCount);
    std::size_t hits = 0;
    util::Table heads_t({"rank", "attacker guess (layer,head)",
                         "actually pruned?"});
    for (std::size_t i = 0; i < guess.size(); ++i) {
        const bool hit =
            std::find(victim_pruned.begin(), victim_pruned.end(),
                      guess[i]) != victim_pruned.end();
        hits += hit ? 1 : 0;
        heads_t.row()
            .cell(i + 1)
            .cell("(" + std::to_string(guess[i].first) + "," +
                  std::to_string(guess[i].second) + ")")
            .cell(hit ? "yes" : "no");
    }
    util::printBanner(std::cout,
                      "(b) locating pruned heads via confidence");
    heads_t.printAscii(std::cout);
    std::cout << "located " << hits << "/" << kPruneCount
              << " pruned heads from the pre-trained model alone\n";

    // ------------------------------------------------------------------
    // (c) Weight-matrix alignment: head h owns columns
    // [h*headDim, (h+1)*headDim) of the projection matrices, so the
    // attacker can drop the pruned heads' slices from the baseline to
    // match the victim's (smaller) matrices.
    // ------------------------------------------------------------------
    const std::size_t head_dim = cfg.headDim();
    const std::size_t kept =
        cfg.numHeads * cfg.numLayers - kPruneCount;
    std::cout << "\n(c) dimension bookkeeping: headDim=" << head_dim
              << ", heads kept across model=" << kept << " of "
              << cfg.numHeads * cfg.numLayers
              << "; per-layer projection width after pruning = "
              << "headDim * kept_heads_in_layer\n";

    const bool ok = counts_ok && hits >= kPruneCount - 1;
    std::cout << (ok ? "\naudit succeeded\n" : "\naudit incomplete\n");
    return ok ? 0 : 1;
}
