/**
 * @file
 * Deep dive into level 2: selective weight extraction economics. A
 * victim is cloned at several extraction-policy operating points, and
 * for each point the example reports the bit-probe cost, the clone's
 * agreement with the victim, and the adversarial transfer rate —
 * showing the cost/fidelity frontier the attacker navigates (paper
 * Secs. 6.1, 7.3, 7.4, 7.6), plus the quantization note of Sec. 8.
 *
 * Run: ./build/examples/clone_and_attack
 */

#include <iostream>

#include "attack/adversarial.hh"
#include "core/decepticon.hh"
#include "extraction/cloner.hh"
#include "extraction/ieee.hh"
#include "gpusim/trace_generator.hh"
#include "nn/param.hh"
#include "obs/obs.hh"
#include "transformer/trainer.hh"
#include "util/table.hh"

using namespace decepticon;

int
main()
{
    // Telemetry: DECEPTICON_OBS=trace:/tmp/run.json,metrics:/tmp/run.jsonl
    // exports a Chrome trace spanning both attack levels plus a JSONL
    // dump of every probe/retry/fallback counter below.
    obs::initFromEnv();
    std::uint64_t phase_start = obs::clock().nowMicros();
    const auto end_phase = [&](const char *name) {
        const std::uint64_t now = obs::clock().nowMicros();
        if (obs::metricsEnabled())
            obs::metrics().setGauge(
                std::string("phase.") + name + ".micros",
                static_cast<double>(now - phase_start));
        phase_start = now;
    };

    std::cout << "=== Decepticon: clone-and-attack economics ===\n";

    transformer::TransformerConfig cfg;
    cfg.vocab = 24;
    cfg.maxSeqLen = 12;
    cfg.hidden = 16;
    cfg.numLayers = 4;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = 4;

    // Pre-train the public backbone; fine-tune the private victim.
    transformer::TransformerClassifier pretrained(cfg, 77);
    transformer::MarkovTask pretask(cfg.vocab, 4, cfg.maxSeqLen, 770,
                                    4.0);
    transformer::TrainOptions popts;
    popts.epochs = 4;
    popts.lr = 2e-3f;
    transformer::Trainer::train(pretrained, pretask.sample(160, 1),
                                popts);

    transformer::TransformerClassifier victim(pretrained);
    victim.resetHead(2, 5);
    transformer::MarkovTask task(cfg.vocab, 2, cfg.maxSeqLen, 771, 4.0);
    transformer::TrainOptions fopts;
    fopts.epochs = 3;
    fopts.lr = 2e-4f;
    fopts.headLrMultiplier = 30.0f;
    transformer::Trainer::fineTune(victim, task.sample(160, 2), fopts);
    end_phase("world_setup");

    // ------------------------------------------------------------------
    // Level 1 first: identify a victim's pre-trained parent from its
    // kernel trace, so an exported Chrome trace covers both attack
    // levels end to end (train extractor -> identify -> extract).
    // ------------------------------------------------------------------
    {
        auto sp = obs::span("example.level1", "example");
        zoo::ModelZoo pool = zoo::ModelZoo::buildDefault(11, 6, 12);
        core::DecepticonOptions dopts;
        dopts.datasetOptions.imagesPerModel = 4;
        dopts.datasetOptions.resolution = 32;
        dopts.cnnOptions.epochs = 30;
        dopts.seed = 3;
        core::Decepticon pipeline(dopts);
        pipeline.trainExtractor(pool);
        const zoo::ModelIdentity *zvictim = pool.finetuned()[0];
        const auto trace = gpusim::TraceGenerator(zvictim->signature)
                               .generate(zvictim->arch, 0xfeedULL);
        const auto ident = pipeline.identify(trace);
        sp.arg("parent", ident.pretrainedName);
        std::cout << "[level 1] victim parent identified as "
                  << ident.pretrainedName << " (confidence "
                  << ident.topProbability << "; actual "
                  << zvictim->pretrainedName << ")\n";
    }
    end_phase("level1");

    auto level2_span = obs::span("example.level2", "example");
    const auto dev = task.sample(120, 3);
    std::vector<int> victim_preds;
    for (const auto &ex : dev.examples)
        victim_preds.push_back(victim.predict(ex.tokens));

    const auto query = task.sample(80, 4).examples;
    const auto seeds = task.sample(60, 5).examples;
    const std::size_t full_bits =
        32 * nn::totalParamCount(victim.params());

    struct OperatingPoint
    {
        const char *label;
        int maxBits;
        double baseDist;
    };
    const OperatingPoint points[] = {
        {"frugal  (2 bits/weight)", 2, 0.01},
        {"default (4 bits/weight)", 4, 0.015},
        {"greedy  (8 bits/weight)", 8, 0.02},
    };

    util::Table t({"policy", "bits read", "% of full attack",
                   "clone agreement", "adv. success"});
    double best_success = 0.0;
    for (const auto &pt : points) {
        extraction::ClonerOptions copts;
        copts.policy.maxBitsPerWeight = pt.maxBits;
        copts.policy.baseDist = pt.baseDist;
        copts.policy.significance = 0.0001;
        copts.agreementTarget = 1.1; // extract everything
        auto result = extraction::ModelCloner::extract(
            victim, pretrained, query, copts);

        std::vector<int> clone_preds;
        for (const auto &ex : dev.examples)
            clone_preds.push_back(result.clone->predict(ex.tokens));
        const double agreement =
            transformer::Trainer::agreement(clone_preds, victim_preds);

        attack::AdversarialOptions aopts;
        aopts.maxFlips = 6;
        const auto transfer = attack::evaluateTransfer(
            victim, *result.clone, seeds, aopts);
        best_success = std::max(best_success, transfer.successRate());

        t.row()
            .cell(pt.label)
            .cell(result.probeStats.bitsRead)
            .cell(100.0 *
                      static_cast<double>(result.probeStats.bitsRead) /
                      static_cast<double>(full_bits),
                  1)
            .cell(agreement, 4)
            .cell(transfer.successRate(), 4);
    }
    util::printBanner(std::cout,
                      "Extraction cost vs clone fidelity vs attack "
                      "power");
    t.printAscii(std::cout);

    // Unreliable channel: DeepSteal-style probe faults on a partially
    // hammerable DRAM, with the resilient prober (voting + retries +
    // baseline fallback) in front of the channel.
    {
        extraction::ClonerOptions copts;
        copts.policy.maxBitsPerWeight = 4;
        copts.policy.baseDist = 0.015;
        copts.policy.significance = 0.0001;
        copts.agreementTarget = 1.1;
        extraction::DramGeometry geom;
        geom.hammerableRowFraction = 0.85; // realistic aggressor reach
        copts.dramGeometry = geom;
        copts.dramSeed = 9;
        fault::FaultSpec fspec;
        fspec.probeFlipRate = 1e-3;
        fspec.transientFailureRate = 0.01;
        fspec.stuckBitRate = 1e-4;
        fspec.seed = 2026;
        copts.faultSpec = fspec;
        copts.resilience = extraction::ResilienceOptions{};
        auto result = extraction::ModelCloner::extract(
            victim, pretrained, query, copts);

        std::vector<int> clone_preds;
        for (const auto &ex : dev.examples)
            clone_preds.push_back(result.clone->predict(ex.tokens));
        const double agreement =
            transformer::Trainer::agreement(clone_preds, victim_preds);

        const auto &es = result.extractionStats;
        util::printBanner(std::cout,
                          "Unreliable channel (15% rows unreachable, "
                          "noisy probes)");
        std::cout << "clone agreement          " << agreement << "\n"
                  << "unreadable weights       " << es.unreadableWeights
                  << "\nbaseline fallbacks       "
                  << es.baselineFallbackWeights
                  << "\nexhausted bits           " << es.exhaustedBits
                  << "\nread amplification       "
                  << result.reliability.amplification() << "x\n"
                  << "injected flips/failures  "
                  << result.faultCounters.bitFlips << "/"
                  << result.faultCounters.probeFailures << "\n";

        // Graceful degradation contract: every weight the channel
        // cannot reach is resolved from the pre-trained baseline,
        // never silently dropped.
        if (es.unreadableWeights == 0 ||
            es.baselineFallbackWeights < es.unreadableWeights) {
            std::cout << "FAIL: unreadable weights not resolved via "
                         "baseline fallback\n";
            obs::flush();
            return 1;
        }
    }
    level2_span.end();
    end_phase("level2");

    // Quantization note (Sec. 8): the checked fraction bits survive a
    // bfloat16 round trip because bfloat16 keeps float32's exponent.
    const float w = 0.018f;
    const float bf = extraction::quantizeTo(w, extraction::kBfloat16);
    std::cout << "\nbfloat16 check: 0.018 -> " << bf
              << " (same exponent field: "
              << (extraction::unbiasedExponent(w) ==
                          extraction::unbiasedExponent(bf)
                      ? "yes"
                      : "no")
              << ")\n";

    obs::flush();
    return best_success > 0.4 ? 0 : 1;
}
